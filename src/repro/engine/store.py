"""Persistent on-disk distance-column store.

:class:`ColumnStore` is the engine's fourth, cross-run cache tier: it
persists threshold-free distance columns as ``.npy`` blobs (loaded back
memory-mapped) below the in-memory LRU tiers of an
:class:`~repro.engine.session.EngineSession`. The in-memory tiers make
reuse cheap *within* a process; the store makes it cheap *across*
processes — a warm rerun of link generation or a Table-reproduction
experiment over unchanged sources skips the distance pass entirely and
produces byte-identical results (float64 round-trips through the npy
format bit-exactly).

Keying
------
A column is identified by a SHA-256 over two content tokens:

* the **pair-list fingerprint** — a hash chain over the content
  fingerprints (:meth:`repro.data.entity.Entity.fingerprint`) of every
  pair, in order. Any change to any entity's properties, to the pair
  set or to its order changes the fingerprint, so stale columns can
  never be served for modified sources — invalidation is automatic and
  needs no manifest bookkeeping;
* the **comparison-op token** — the compiler's threshold-free
  structural signature (:func:`repro.engine.compiler.signature_token`),
  so every threshold and weight mutation over the same
  ``(metric, source, target)`` shares one persisted column.

Index tier
----------
Next to the column tier the store keeps a **blocking-index tier**:
pickled candidate-generation indexes (token blocks, MultiBlock
comparison indexes, sorted-neighbourhood key lists) keyed by
``sha256(DataSource.fingerprint() x blocker signature)``. Indexes
reference entities by uid only — the live source resolves uids back to
entities on load — so a persisted index is valid exactly as long as the
source content is unchanged, which the fingerprint key guarantees.
Warm reruns of link generation then skip index construction the same
way they already skip distance-column builds.

Layout on disk
--------------
::

    <root>/columns-v1/<key[:2]>/<key>.npy    # float64 column blob
    <root>/columns-v1/<key[:2]>/<key>.json   # metadata sidecar
    <root>/indexes-v1/<key[:2]>/<key>.pkl    # pickled blocking index
    <root>/probes-v1/<key[:2]>/<key>.pkl     # per-entity probe ledger
    <root>/epochs-v1/<key[:2]>/<key>.json    # delta-epoch provenance

Blobs are written to a temp file in the destination directory and
published with ``os.replace``, so readers — including concurrent
writer processes under a process-pool executor — never observe a
partial file; racing writers produce identical bytes and the last
rename wins. Corrupt or truncated blobs (killed writer mid-``os.replace``
on a non-atomic filesystem, disk faults) are detected on load, counted
as ``invalid``, deleted and rebuilt — never a crash.

The store never raises for storage faults: a failed load is a miss and
a failed save is skipped, so a read-only or full cache directory
degrades to cold-cache behaviour. Two kinds of fault are told apart:
a *corrupt* blob (unreadable header, truncated data, wrong shape) is
deleted so the rebuilt column can replace it, while a *transient* I/O
error (``EIO``, ``ENOSPC``, an injected fault) leaves the blob alone —
deleting a healthy file because the disk hiccuped would turn a
transient fault into permanent cache loss. Transient faults feed a
:class:`~repro.faults.CircuitBreaker`: after enough consecutive
failures the store stops touching the disk entirely (every operation
becomes a fast miss / skipped write), re-probing it after a cooldown,
and the trip is surfaced through :class:`StoreStats` and session/match
stats as a recorded degradation. All disk entry points run through
:func:`repro.faults.fire` injection seams (``store.read``,
``store.write``, ``store.rename``), which are inert without a
``REPRO_FAULTS`` plan.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro import faults
from repro.faults import CircuitBreaker

#: Environment variable selecting the cache directory when no store is
#: configured explicitly (absent or empty means "no persistent tier").
CACHE_ENV = "REPRO_ENGINE_CACHE"

#: Bumped whenever the blob format or key derivation changes; old
#: versions keep their own subdirectory and are simply ignored.
STORE_FORMAT_VERSION = 1

#: Format version of the blocking-index tier (independent of the column
#: tier: index payload layout can evolve without invalidating columns).
INDEX_FORMAT_VERSION = 1

#: Format version of the probe-ledger tier: per-entity candidate-code
#: results keyed entity fingerprint x probe signature.
PROBE_FORMAT_VERSION = 1

#: Format version of the delta-epoch record tier: small JSON provenance
#: blobs recording which parent epoch a patched index derived from.
EPOCH_FORMAT_VERSION = 1


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time snapshot of one store's counters."""

    hits: int
    misses: int
    #: Columns persisted by this process (one per store-level miss that
    #: was subsequently built and written back).
    writes: int
    #: Corrupt/mismatched blobs dropped on load (each also counts as a
    #: miss: the caller rebuilds the column).
    invalid: int
    bytes_read: int
    bytes_written: int
    #: Blocking-index tier counters (separate from the column counters
    #: so "warm run skipped index construction" is assertable without
    #: conflating it with column hits).
    index_hits: int = 0
    index_misses: int = 0
    index_writes: int = 0
    index_invalid: int = 0
    #: Probe-ledger tier counters: per-*entity* hit/miss granularity
    #: (one blob holds many entities), so "the warm run probed only the
    #: changed entities" is directly assertable.
    probe_hits: int = 0
    probe_misses: int = 0
    probe_writes: int = 0
    probe_invalid: int = 0
    #: Transient I/O faults (EIO/ENOSPC/injected) across all tiers —
    #: distinct from ``invalid``: a transient fault never deletes the
    #: blob, it just degrades that operation.
    io_faults: int = 0
    #: Times the store's circuit breaker opened (disk bypassed until
    #: the cooldown half-opens it).
    breaker_trips: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before the first lookup."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    @property
    def index_lookups(self) -> int:
        return self.index_hits + self.index_misses

    @property
    def index_hit_rate(self) -> float:
        """Index-tier hits per lookup; 0.0 before the first lookup."""
        lookups = self.index_lookups
        return self.index_hits / lookups if lookups else 0.0

    def delta(self, baseline: "StoreStats | None") -> "StoreStats":
        """Counters accumulated since ``baseline`` (an earlier snapshot
        of the same store; every field is a monotonic counter).
        ``baseline=None`` means the delta is the full history."""
        if baseline is None:
            return self
        return StoreStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            writes=self.writes - baseline.writes,
            invalid=self.invalid - baseline.invalid,
            bytes_read=self.bytes_read - baseline.bytes_read,
            bytes_written=self.bytes_written - baseline.bytes_written,
            index_hits=self.index_hits - baseline.index_hits,
            index_misses=self.index_misses - baseline.index_misses,
            index_writes=self.index_writes - baseline.index_writes,
            index_invalid=self.index_invalid - baseline.index_invalid,
            probe_hits=self.probe_hits - baseline.probe_hits,
            probe_misses=self.probe_misses - baseline.probe_misses,
            probe_writes=self.probe_writes - baseline.probe_writes,
            probe_invalid=self.probe_invalid - baseline.probe_invalid,
            io_faults=self.io_faults - baseline.io_faults,
            breaker_trips=self.breaker_trips - baseline.breaker_trips,
        )

    @staticmethod
    def merged(snapshots: Sequence["StoreStats"]) -> "StoreStats | None":
        """Sum per-worker snapshots into one fleet-wide view."""
        if not snapshots:
            return None
        return StoreStats(
            hits=sum(s.hits for s in snapshots),
            misses=sum(s.misses for s in snapshots),
            writes=sum(s.writes for s in snapshots),
            invalid=sum(s.invalid for s in snapshots),
            bytes_read=sum(s.bytes_read for s in snapshots),
            bytes_written=sum(s.bytes_written for s in snapshots),
            index_hits=sum(s.index_hits for s in snapshots),
            index_misses=sum(s.index_misses for s in snapshots),
            index_writes=sum(s.index_writes for s in snapshots),
            index_invalid=sum(s.index_invalid for s in snapshots),
            probe_hits=sum(s.probe_hits for s in snapshots),
            probe_misses=sum(s.probe_misses for s in snapshots),
            probe_writes=sum(s.probe_writes for s in snapshots),
            probe_invalid=sum(s.probe_invalid for s in snapshots),
            io_faults=sum(s.io_faults for s in snapshots),
            breaker_trips=sum(s.breaker_trips for s in snapshots),
        )


@dataclass(frozen=True)
class StoreEntry:
    """One persisted column, as seen by maintenance commands."""

    key: str
    path: Path
    nbytes: int
    #: Last use (mtime; renewed on every hit so GC evicts cold entries).
    last_used: float


@dataclass(frozen=True)
class GCResult:
    """Outcome of one :meth:`ColumnStore.gc` sweep."""

    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int


def column_key(pairs_fingerprint: str, op_token: str) -> str:
    """The store key of one (pair list, comparison op) column."""
    payload = f"{pairs_fingerprint}\x1f{op_token}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def index_key(source_fingerprint: str, blocker_token: str) -> str:
    """The store key of one (data source, blocker signature) index.

    ``source_fingerprint`` is :meth:`repro.data.source.DataSource.
    fingerprint` — a content hash over every entity — so any change to
    the indexed source changes the key and stale indexes are never
    served. ``blocker_token`` is the blocker's stable construction
    signature (:meth:`repro.matching.blocking.Blocker.signature`).
    """
    payload = f"{source_fingerprint}\x1f{blocker_token}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def pairs_fingerprint(pairs: Sequence[tuple]) -> str:
    """Content fingerprint of an ordered entity-pair list.

    Hashes each pair's entity content fingerprints in order — columns
    are positional, so order is part of the identity.
    """
    digest = hashlib.sha256()
    for entity_a, entity_b in pairs:
        digest.update(entity_a.fingerprint().encode("ascii"))
        digest.update(b"\x1f")
        digest.update(entity_b.fingerprint().encode("ascii"))
        digest.update(b"\x1e")
    return digest.hexdigest()


class ColumnStore:
    """An on-disk, content-keyed store of float64 distance columns.

    Thread-safe (counters under one lock; the filesystem operations are
    atomic-rename publications) and safe for concurrent processes
    sharing one cache directory. ``mmap=False`` loads blobs into memory
    instead of memory-mapping them — useful when the cache directory
    lives on a filesystem with poor mmap behaviour.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        mmap: bool = True,
        breaker: CircuitBreaker | None = None,
    ):
        self._root = Path(root).expanduser()
        self._columns_dir = self._root / f"columns-v{STORE_FORMAT_VERSION}"
        self._indexes_dir = self._root / f"indexes-v{INDEX_FORMAT_VERSION}"
        self._probes_dir = self._root / f"probes-v{PROBE_FORMAT_VERSION}"
        self._epochs_dir = self._root / f"epochs-v{EPOCH_FORMAT_VERSION}"
        self._mmap = mmap
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._lock = threading.Lock()
        self._io_faults = 0
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._invalid = 0
        self._bytes_read = 0
        self._bytes_written = 0
        self._index_hits = 0
        self._index_misses = 0
        self._index_writes = 0
        self._index_invalid = 0
        self._probe_hits = 0
        self._probe_misses = 0
        self._probe_writes = 0
        self._probe_invalid = 0

    @property
    def root(self) -> Path:
        """The cache directory this store persists under."""
        return self._root

    def _column_path(self, key: str) -> Path:
        return self._columns_dir / key[:2] / f"{key}.npy"

    def _index_path(self, key: str) -> Path:
        return self._indexes_dir / key[:2] / f"{key}.pkl"

    def _probe_path(self, key: str) -> Path:
        return self._probes_dir / key[:2] / f"{key}.pkl"

    def _epoch_path(self, key: str) -> Path:
        return self._epochs_dir / key[:2] / f"{key}.json"

    # -- fault accounting -----------------------------------------------------
    def _io_fault(self, error: OSError) -> None:
        """Count a transient disk fault and feed the breaker."""
        with self._lock:
            self._io_faults += 1
        reason = error.strerror or str(error)
        self.breaker.record_failure(reason)

    def trip_reasons(self) -> tuple[str, ...]:
        """Every degradation the breaker has recorded (monotonic)."""
        return self.breaker.trip_reasons()

    # -- load / save ----------------------------------------------------------
    def load(self, key: str, rows: int) -> np.ndarray | None:
        """The persisted column for ``key``, or None on a miss.

        A hit returns a read-only array of exactly ``rows`` float64
        values (memory-mapped by default) and renews the blob's mtime
        for GC recency. Anything unreadable — missing, truncated,
        malformed, wrong shape or dtype — is a miss; corrupt blobs are
        additionally deleted so the rebuilt column can replace them,
        while transient I/O errors leave the blob in place and feed the
        circuit breaker. With the breaker open the disk is bypassed
        entirely and every load is a fast miss.
        """
        if not self.breaker.allow():
            with self._lock:
                self._misses += 1
            return None
        path = self._column_path(key)
        try:
            faults.fire("store.read")
            if self._mmap:
                column = np.load(path, mmap_mode="r", allow_pickle=False)
            else:
                column = np.load(path, allow_pickle=False)
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            self.breaker.record_success()
            return None
        except (ValueError, EOFError):
            # Unreadable header or truncated data: drop the blob and
            # report a miss so the caller rebuilds (and re-persists) it.
            self._discard_corrupt(path)
            return None
        except OSError as error:
            # Transient disk fault: the blob may be perfectly healthy,
            # so never delete it — degrade this lookup to a miss and
            # let the breaker decide whether to keep trying the disk.
            with self._lock:
                self._misses += 1
            self._io_fault(error)
            return None
        if column.shape != (rows,) or column.dtype != np.float64:
            # Key collision cannot produce this (keys hash the pair
            # list), so a shape/dtype mismatch means a damaged or
            # foreign file squatting on the key: treat as corruption.
            del column
            self._discard_corrupt(path)
            return None
        if self._mmap:
            # Force the data pages through validation: a blob truncated
            # *after* a well-formed header would otherwise fault later,
            # inside a kernel. Reading also warms the page cache.
            try:
                checksum = float(np.sum(column))
            except (ValueError, OSError):
                del column
                self._discard_corrupt(path)
                return None
            del checksum
        else:
            column.setflags(write=False)
        try:
            os.utime(path, None)
        except OSError:
            pass
        with self._lock:
            self._hits += 1
            self._bytes_read += column.nbytes
        self.breaker.record_success()
        return column

    def save(
        self,
        key: str,
        column: np.ndarray,
        meta: Mapping[str, object] | None = None,
    ) -> bool:
        """Persist a column under ``key`` (atomic; returns success).

        Concurrent writers are safe: every writer publishes a complete
        temp file via ``os.replace`` and all writers for one key write
        identical bytes (the computation is deterministic), so the last
        rename wins without a lock. Storage failures return False —
        the engine then simply keeps the column in memory only.
        """
        if not self.breaker.allow():
            return False
        path = self._column_path(key)
        column = np.ascontiguousarray(column, dtype=np.float64)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".npy"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.save(handle, column)
                # Injection seams bracket publication: ``store.write``
                # fires with the temp path (a torn fault truncates it —
                # the unlink below must keep the torn bytes invisible),
                # ``store.rename`` fires at the point of no return.
                faults.fire("store.write", tmp_path=tmp)
                faults.fire("store.rename")
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._write_sidecar(path, column, meta)
        except OSError as error:
            self._io_fault(error)
            return False
        with self._lock:
            self._writes += 1
            self._bytes_written += column.nbytes
        self.breaker.record_success()
        return True

    def _write_sidecar(
        self,
        column_path: Path,
        column: np.ndarray,
        meta: Mapping[str, object] | None,
    ) -> None:
        """Best-effort metadata sidecar (introspection only — loading
        never consults it, so a missing/partial sidecar is harmless)."""
        payload = {
            "rows": int(column.shape[0]),
            "nbytes": int(column.nbytes),
            "created": time.time(),
            "format_version": STORE_FORMAT_VERSION,
        }
        if meta:
            payload.update({str(k): v for k, v in meta.items()})
        sidecar = column_path.with_suffix(".json")
        try:
            fd, tmp = tempfile.mkstemp(
                dir=column_path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, default=str)
            os.replace(tmp, sidecar)
        except OSError:
            pass

    def _discard_corrupt(self, path: Path) -> None:
        for doomed in (path, path.with_suffix(".json")):
            try:
                os.unlink(doomed)
            except OSError:
                pass
        with self._lock:
            self._invalid += 1
            self._misses += 1

    # -- blocking-index tier --------------------------------------------------
    def load_index(self, key: str) -> object | None:
        """The persisted blocking index for ``key``, or None on a miss.

        Payloads are pickled plain data structures (dicts/tuples of
        uids and block keys, numpy code arrays — never entity objects
        or code, and never private classes, so refactors only cost a
        clean miss). A
        truncated or otherwise unreadable blob is dropped, counted as
        ``index_invalid`` and reported as a miss so the caller rebuilds
        it. A hit renews the blob's mtime for GC recency.
        """
        if not self.breaker.allow():
            with self._lock:
                self._index_misses += 1
            return None
        path = self._index_path(key)
        try:
            faults.fire("store.read")
            blob = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self._index_misses += 1
            self.breaker.record_success()
            return None
        except OSError as error:
            with self._lock:
                self._index_misses += 1
            self._io_fault(error)
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:
            # Truncated/corrupt pickle streams raise a zoo of error
            # types (UnpicklingError, EOFError, AttributeError, ...);
            # any of them means the blob is unusable.
            for doomed in (path,):
                try:
                    os.unlink(doomed)
                except OSError:
                    pass
            with self._lock:
                self._index_invalid += 1
                self._index_misses += 1
            return None
        try:
            os.utime(path, None)
        except OSError:
            pass
        with self._lock:
            self._index_hits += 1
            self._bytes_read += len(blob)
        self.breaker.record_success()
        return payload

    def save_index(self, key: str, payload: object) -> bool:
        """Persist a blocking index under ``key`` (atomic; returns
        success). Same publication discipline as :meth:`save`: complete
        temp file + ``os.replace``, deterministic payloads make racing
        writers harmless, storage faults degrade to cold behaviour."""
        if not self.breaker.allow():
            return False
        path = self._index_path(key)
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                faults.fire("store.write", tmp_path=tmp)
                faults.fire("store.rename")
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as error:
            self._io_fault(error)
            return False
        with self._lock:
            self._index_writes += 1
            self._bytes_written += len(blob)
        self.breaker.record_success()
        return True

    # -- probe-ledger tier ----------------------------------------------------
    def load_probe_ledger(self, key: str) -> dict | None:
        """The persisted probe ledger for ``key``, or None when absent.

        A ledger maps entity content fingerprints to their probed
        candidate-code arrays for one (probe-side source epoch, probe
        signature). Unlike the column/index tiers, hit/miss accounting
        is per *entity*, not per blob — callers report it through
        :meth:`record_probe_lookups` after consulting the ledger, so a
        blob-level miss here counts nothing by itself.
        """
        if not self.breaker.allow():
            return None
        path = self._probe_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as error:
            self._io_fault(error)
            return None
        try:
            payload = pickle.loads(blob)
        except Exception:
            try:
                os.unlink(path)
            except OSError:
                pass
            with self._lock:
                self._probe_invalid += 1
            return None
        if not isinstance(payload, dict):
            try:
                os.unlink(path)
            except OSError:
                pass
            with self._lock:
                self._probe_invalid += 1
            return None
        try:
            os.utime(path, None)
        except OSError:
            pass
        with self._lock:
            self._bytes_read += len(blob)
        return payload

    def save_probe_ledger(self, key: str, payload: Mapping) -> bool:
        """Persist a probe ledger under ``key`` (atomic; returns
        success). Racing writers may each persist a different superset
        of the entries they loaded; any of them is a valid ledger —
        absent entries are simply re-probed next run."""
        if not self.breaker.allow():
            return False
        path = self._probe_path(key)
        try:
            blob = pickle.dumps(dict(payload), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as error:
            self._io_fault(error)
            return False
        with self._lock:
            self._bytes_written += len(blob)
        return True

    def record_probe_lookups(
        self, hits: int = 0, misses: int = 0, writes: int = 0
    ) -> None:
        """Report per-entity ledger traffic (see :meth:`load_probe_ledger`)."""
        if not (hits or misses or writes):
            return
        with self._lock:
            self._probe_hits += hits
            self._probe_misses += misses
            self._probe_writes += writes

    # -- delta-epoch records --------------------------------------------------
    def save_epoch(self, fingerprint: str, payload: Mapping[str, object]) -> bool:
        """Record provenance for a patched-index epoch (best effort).

        One small JSON blob per source epoch fingerprint, written when
        an index is patched forward rather than rebuilt. Purely
        introspective — nothing loads it on the hot path — but it makes
        ``cache info`` and GC aware of the epoch chain so orphaned
        records age out with everything else.
        """
        if not self.breaker.allow():
            return False
        path = self._epoch_path(
            hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(dict(payload), handle, default=str)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as error:
            self._io_fault(error)
            return False
        return True

    def load_epoch(self, fingerprint: str) -> dict | None:
        """The provenance record for one source epoch, or None."""
        path = self._epoch_path(
            hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
        )
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- maintenance ----------------------------------------------------------
    def entries(self) -> Iterator[StoreEntry]:
        """All persisted blobs across every tier, unordered.

        Columns, blocking indexes, probe ledgers and delta-epoch
        records share the maintenance machinery: GC recency is mtime
        (renewed on hits) for all of them, ``clear`` drops everything —
        so orphaned epoch blobs age out like any cold column.
        """
        for directory, pattern in (
            (self._columns_dir, "*/*.npy"),
            (self._indexes_dir, "*/*.pkl"),
            (self._probes_dir, "*/*.pkl"),
            (self._epochs_dir, "*/*.json"),
        ):
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob(pattern)):
                if path.name.startswith(".tmp-"):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                yield StoreEntry(
                    key=path.stem,
                    path=path,
                    nbytes=stat.st_size,
                    last_used=stat.st_mtime,
                )

    def describe(self) -> dict:
        """Totals for ``cache info``: per-tier entry counts and bytes."""
        columns = 0
        indexes = 0
        probes = 0
        epochs = 0
        total = 0
        for entry in self.entries():
            tier = entry.path.parent.parent.name
            if tier.startswith("indexes-"):
                indexes += 1
            elif tier.startswith("probes-"):
                probes += 1
            elif tier.startswith("epochs-"):
                epochs += 1
            else:
                columns += 1
            total += entry.nbytes
        return {
            "path": str(self._root),
            "entries": columns + indexes + probes + epochs,
            "columns": columns,
            "indexes": indexes,
            "probes": probes,
            "epochs": epochs,
            "bytes": total,
            "breaker": self.breaker.describe(),
        }

    def gc(
        self,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
    ) -> GCResult:
        """Evict cold columns by age and/or total size.

        ``max_age_days`` removes entries not used (loaded or written)
        within that window; ``max_bytes`` then removes
        least-recently-used entries until the store fits. With neither
        bound this is a no-op report.
        """
        entries = sorted(self.entries(), key=lambda e: e.last_used)
        removed = 0
        freed = 0
        kept: list[StoreEntry] = []
        now = time.time()
        cutoff = (
            now - max_age_days * 86400.0 if max_age_days is not None else None
        )
        for entry in entries:
            if cutoff is not None and entry.last_used < cutoff:
                if self._remove_entry(entry):
                    removed += 1
                    freed += entry.nbytes
                    continue
            kept.append(entry)
        if max_bytes is not None:
            kept_bytes = sum(e.nbytes for e in kept)
            survivors: list[StoreEntry] = []
            for entry in kept:
                if kept_bytes > max_bytes:
                    if self._remove_entry(entry):
                        removed += 1
                        freed += entry.nbytes
                        kept_bytes -= entry.nbytes
                        continue
                survivors.append(entry)
            kept = survivors
        return GCResult(
            removed=removed,
            freed_bytes=freed,
            kept=len(kept),
            kept_bytes=sum(e.nbytes for e in kept),
        )

    def clear(self) -> int:
        """Remove every persisted column; returns the number removed."""
        removed = 0
        for entry in list(self.entries()):
            if self._remove_entry(entry):
                removed += 1
        return removed

    def _remove_entry(self, entry: StoreEntry) -> bool:
        ok = False
        try:
            os.unlink(entry.path)
            ok = True
        except OSError:
            pass
        try:
            os.unlink(entry.path.with_suffix(".json"))
        except OSError:
            pass
        return ok

    # -- statistics -----------------------------------------------------------
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                invalid=self._invalid,
                bytes_read=self._bytes_read,
                bytes_written=self._bytes_written,
                index_hits=self._index_hits,
                index_misses=self._index_misses,
                index_writes=self._index_writes,
                index_invalid=self._index_invalid,
                probe_hits=self._probe_hits,
                probe_misses=self._probe_misses,
                probe_writes=self._probe_writes,
                probe_invalid=self._probe_invalid,
                io_faults=self._io_faults,
                breaker_trips=self.breaker.trips,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnStore({str(self._root)!r})"


def resolve_store(
    store: "ColumnStore | str | os.PathLike | None" = None,
) -> ColumnStore | None:
    """Resolve a cache-dir argument to a :class:`ColumnStore` or None.

    ``None`` consults the ``REPRO_ENGINE_CACHE`` environment variable
    (absent or empty means no persistent tier); an empty string
    explicitly disables the tier; any other string/path opens a store
    rooted there; a store instance passes through unchanged.
    """
    if store is None:
        store = os.environ.get(CACHE_ENV, "")
    if isinstance(store, ColumnStore):
        return store
    if isinstance(store, (str, os.PathLike)):
        text = os.fspath(store)
        return ColumnStore(text) if text else None
    raise TypeError(
        f"store must be a ColumnStore, path, str or None, "
        f"not {type(store).__name__}"
    )
