"""Bounded LRU caches with hit/miss/eviction statistics.

The engine keeps three cache tiers (transformed values, distance
columns, thresholded score vectors). The seed evaluator protected its
memory bound by wholesale ``.clear()`` at capacity, which throws away
the shared genetic material the cache exists to exploit right when the
population is largest; :class:`LRUCache` evicts one least-recently-used
entry instead, so hot entries survive across generations and batches.

The cache is thread-safe: a hit mutates recency state (delete +
re-insert), so concurrent engine workers
(:mod:`repro.engine.executor`) would corrupt an unlocked dict. All
operations take one short uncontended lock; cached values themselves
are immutable (tuples, read-only arrays), so no lock is needed around
their use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Hashable, Sequence


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache tier."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before the first lookup."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def delta(self, baseline: "CacheStats | None") -> "CacheStats":
        """Counters accumulated since ``baseline`` (an earlier snapshot
        of the same cache). ``size``/``capacity`` are point-in-time
        gauges and stay at this snapshot's values. ``baseline=None``
        means 'no earlier snapshot' — the delta is the full history."""
        if baseline is None:
            return self
        return CacheStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            evictions=self.evictions - baseline.evictions,
            size=self.size,
            capacity=self.capacity,
        )

    @staticmethod
    def merged(snapshots: "Sequence[CacheStats]") -> "CacheStats | None":
        """Sum per-worker snapshots into one fleet-wide view (capacities
        too: the merged snapshot describes the fleet, not one worker).
        None for an empty sequence — 'no workers reported'."""
        if not snapshots:
            return None
        return CacheStats(
            hits=sum(s.hits for s in snapshots),
            misses=sum(s.misses for s in snapshots),
            evictions=sum(s.evictions for s in snapshots),
            size=sum(s.size for s in snapshots),
            capacity=sum(s.capacity for s in snapshots),
        )


class LRUCache:
    """A dict-backed LRU cache (Python dicts preserve insertion order:
    a hit re-inserts the key at the end, eviction pops the front)."""

    __slots__ = ("_data", "_capacity", "_hits", "_misses", "_evictions", "_lock")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._data: dict[Hashable, Any] = {}
        self._capacity = capacity
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, key: Hashable) -> Any | None:
        """The cached value or None; counts a hit or a miss and renews
        the entry's recency on a hit."""
        with self._lock:
            data = self._data
            value = data.get(key)
            if value is None:
                self._misses += 1
                return None
            self._hits += 1
            # Move to the most-recently-used position.
            del data[key]
            data[key] = value
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert an entry, evicting the least recently used at capacity."""
        with self._lock:
            data = self._data
            if key in data:
                del data[key]
            elif len(data) >= self._capacity:
                data.pop(next(iter(data)))
                self._evictions += 1
            data[key] = value

    def clear(self) -> None:
        """Drop all entries (statistics counters keep accumulating)."""
        with self._lock:
            self._data.clear()

    def evict_matching(self, predicate) -> int:
        """Evict every entry whose key satisfies ``predicate``; returns
        the number evicted. Used to release a discarded context's
        entries instead of waiting for capacity eviction."""
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            self._evictions += len(doomed)
            return len(doomed)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                capacity=self._capacity,
            )
