"""Compile linkage-rule trees into deduplicated execution plans.

Populations evolved by crossover share most of their genetic material
(Section 5.3 of the paper; the seed evaluator's docstring makes the
same observation), so evaluating a population rule-by-rule recomputes
the same subtrees hundreds of times per generation. The compiler
flattens rule trees into a DAG of *unique* operations keyed by
structural hash:

* a **value op** is a value subtree (property reads + transformations);
  two structurally identical subtrees anywhere in a population compile
  to the same op, so their transformed values are materialised once per
  entity;
* a **comparison op** is ``(metric, source value op, target value op)``
  — deliberately *without* the threshold, because the threshold only
  enters in the final ``1 - d/theta`` array operation. GP mutation
  constantly perturbs thresholds; under this keying a mutated
  comparison re-uses the cached distance column and costs one numpy
  expression instead of a full re-evaluation;
* aggregations stay as a tree of cheap array reductions over compiled
  children (weights excluded from comparison identity, as in the seed
  cache key).

A :class:`RuleCompiler` is persistent: ops are interned across calls,
so compiling generation N+1 mostly re-resolves to the ops of
generation N.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence, Union

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
)

#: Canonical structural signature of a value subtree (hashable tuple).
ValueSignature = Hashable
#: Canonical structural signature of a comparison op (threshold-free).
ComparisonSignature = Hashable


def value_tree_signature(node: ValueNode) -> ValueSignature:
    """Structural signature of a value subtree, without a compiler.

    Produces exactly the tuples :meth:`RuleCompiler.value_signature`
    interns (asserted by the engine test suite), so consumers that have
    no session at hand — blocking-index cache keys, most prominently —
    can still key on the canonical structural identity.
    """
    if isinstance(node, PropertyNode):
        return ("prop", node.property_name)
    if isinstance(node, TransformationNode):
        return (
            "tf",
            node.function,
            tuple(sorted(node.params)),
            tuple(value_tree_signature(child) for child in node.inputs),
        )
    raise TypeError(f"not a value operator: {type(node).__name__}")


def signature_token(sig: Hashable) -> str:
    """A deterministic text form of a structural signature.

    Signatures are nested tuples of strings built by
    :class:`RuleCompiler`, so their ``repr`` is stable across processes
    and Python runs (no id()s, no hash randomisation) — exactly what a
    *persistent* cache key needs. The in-memory tiers keep keying on
    the tuples themselves; only the on-disk column store pays for the
    string form.
    """
    return repr(sig)


@dataclass(frozen=True)
class ComparisonOp:
    """A unique (metric, source, target) distance computation."""

    sig: ComparisonSignature
    metric: str
    source_sig: ValueSignature
    target_sig: ValueSignature
    #: Representative value trees (first occurrence wins; structurally
    #: identical by construction).
    source: ValueNode
    target: ValueNode


@dataclass(frozen=True)
class CompiledComparison:
    """A comparison node bound to its distance op and threshold."""

    op: ComparisonOp
    threshold: float
    weight: int = 1


@dataclass(frozen=True)
class CompiledAggregation:
    """An aggregation over compiled children."""

    function: str
    children: tuple["CompiledSimilarity", ...]
    weights: tuple[int, ...]
    weight: int = 1


CompiledSimilarity = Union[CompiledComparison, CompiledAggregation]


@dataclass(frozen=True)
class CompiledPlan:
    """The result of compiling a population of rule trees."""

    roots: tuple[CompiledSimilarity, ...]
    #: Unique comparison ops referenced by ``roots``.
    comparison_ops: tuple[ComparisonOp, ...]
    #: Unique value ops referenced by ``comparison_ops``.
    value_op_count: int
    #: Total comparison nodes across the input trees, before dedup.
    comparison_node_count: int


@dataclass(frozen=True)
class GenerationDiff:
    """Incremental op reuse of one compiled population.

    Crossover-heavy generations mostly re-resolve to the interned ops
    of earlier generations; a low reuse ratio means the operators are
    churning genetic material (lots of fresh distance columns to pay
    for), which is exactly the signal needed to tune crossover
    operators. ``new_*`` counts ops interned for the first time by this
    ``compile_population`` call.
    """

    #: 0-based index of the ``compile_population`` call.
    index: int
    #: Unique comparison ops referenced by this generation's plan.
    comparison_ops: int
    new_comparison_ops: int
    #: Unique value ops referenced by this generation's comparisons.
    value_ops: int
    new_value_ops: int

    @property
    def comparison_reuse_ratio(self) -> float:
        """Share of this generation's comparison ops that were already
        interned by earlier generations (1.0 = nothing new)."""
        if not self.comparison_ops:
            return 1.0
        return 1.0 - self.new_comparison_ops / self.comparison_ops

    @property
    def value_reuse_ratio(self) -> float:
        """Share of this generation's value ops that were already
        interned by earlier generations."""
        if not self.value_ops:
            return 1.0
        return 1.0 - self.new_value_ops / self.value_ops


def iter_compiled_comparisons(
    node: CompiledSimilarity,
) -> Iterable[CompiledComparison]:
    """Depth-first iteration over the comparisons of a compiled tree."""
    if isinstance(node, CompiledComparison):
        yield node
        return
    for child in node.children:
        yield from iter_compiled_comparisons(child)


class RuleCompiler:
    """Interns value and comparison ops by structural hash.

    Frozen dataclass nodes hash and compare structurally, so the memo
    tables are keyed by the nodes themselves; the canonical tuple
    signatures exist so caches downstream can key on something stable
    that excludes thresholds and weights.
    """

    def __init__(self, max_memo_entries: int = 200_000) -> None:
        if max_memo_entries < 1:
            raise ValueError("max_memo_entries must be >= 1")
        #: The node-keyed memo tables grow with every *distinct* node —
        #: including each threshold/weight mutation — so a long-lived
        #: session would accumulate them without bound. At the cap they
        #: are dropped wholesale (they are pure memoisation; dropping
        #: costs recompilation, never correctness). The interned op
        #: tables are genuinely deduplicated (threshold-free) and stay.
        self._max_memo_entries = max_memo_entries
        self._value_sigs: dict[ValueNode, ValueSignature] = {}
        self._value_ops: dict[ValueSignature, ValueNode] = {}
        self._comparison_ops: dict[ComparisonSignature, ComparisonOp] = {}
        self._compiled: dict[SimilarityNode, CompiledSimilarity] = {}
        #: Per-``compile_population`` reuse records (bounded; a GP run
        #: is one record per generation).
        self._generation_diffs: list[GenerationDiff] = []
        self._max_generation_diffs = 10_000
        # Compilation mutates the intern tables; engine workers may
        # compile concurrently (e.g. matching shards sharing a
        # session), so the public entry points serialise on one
        # reentrant lock. Compilation is cheap relative to evaluation —
        # the lock is not on the hot path.
        self._lock = threading.RLock()

    # -- signatures -----------------------------------------------------------
    def value_signature(self, node: ValueNode) -> ValueSignature:
        """Canonical signature of a value subtree (interned)."""
        with self._lock:
            return self._value_signature(node)

    def _value_signature(self, node: ValueNode) -> ValueSignature:
        sig = self._value_sigs.get(node)
        if sig is not None:
            return sig
        if isinstance(node, PropertyNode):
            sig = ("prop", node.property_name)
        elif isinstance(node, TransformationNode):
            sig = (
                "tf",
                node.function,
                tuple(sorted(node.params)),
                tuple(self._value_signature(child) for child in node.inputs),
            )
        else:
            raise TypeError(f"not a value operator: {type(node).__name__}")
        if len(self._value_sigs) >= self._max_memo_entries:
            self._value_sigs.clear()
        self._value_sigs[node] = sig
        self._value_ops.setdefault(sig, node)
        return sig

    def value_op(self, sig: ValueSignature) -> ValueNode:
        """The representative value tree of an interned signature."""
        return self._value_ops[sig]

    # -- compilation ----------------------------------------------------------
    def compile(self, node: SimilarityNode) -> CompiledSimilarity:
        """Compile one similarity tree (memoised structurally)."""
        with self._lock:
            return self._compile(node)

    def _compile(self, node: SimilarityNode) -> CompiledSimilarity:
        compiled = self._compiled.get(node)
        if compiled is not None:
            return compiled
        if isinstance(node, ComparisonNode):
            source_sig = self._value_signature(node.source)
            target_sig = self._value_signature(node.target)
            op_sig = ("cmp", node.metric, source_sig, target_sig)
            op = self._comparison_ops.get(op_sig)
            if op is None:
                op = ComparisonOp(
                    sig=op_sig,
                    metric=node.metric,
                    source_sig=source_sig,
                    target_sig=target_sig,
                    source=node.source,
                    target=node.target,
                )
                self._comparison_ops[op_sig] = op
            compiled = CompiledComparison(
                op=op, threshold=node.threshold, weight=node.weight
            )
        elif isinstance(node, AggregationNode):
            children = tuple(self._compile(child) for child in node.operators)
            compiled = CompiledAggregation(
                function=node.function,
                children=children,
                weights=tuple(child.weight for child in node.operators),
                weight=node.weight,
            )
        else:
            raise TypeError(f"not a similarity operator: {type(node).__name__}")
        if len(self._compiled) >= self._max_memo_entries:
            self._compiled.clear()
        self._compiled[node] = compiled
        return compiled

    def compile_population(
        self, roots: Sequence[SimilarityNode]
    ) -> CompiledPlan:
        """Compile a whole population into one deduplicated plan.

        Each call also records a :class:`GenerationDiff` — how many of
        the plan's ops were interned for the first time by this call —
        so sessions can report per-generation reuse ratios.
        """
        with self._lock:
            # Membership snapshots, not size deltas: the diff counts how
            # many of *this plan's* ops were first interned by this call,
            # over the same basis as the totals — a size delta would also
            # count nested value subtrees and ops interned by unrelated
            # single-rule compiles, letting the ratio leave [0, 1].
            comparisons_before = set(self._comparison_ops)
            values_before = set(self._value_ops)
            compiled_roots = tuple(self._compile(root) for root in roots)
            ops: dict[ComparisonSignature, ComparisonOp] = {}
            node_count = 0
            for root in compiled_roots:
                for comparison in iter_compiled_comparisons(root):
                    node_count += 1
                    ops.setdefault(comparison.op.sig, comparison.op)
            value_sigs = set()
            for op in ops.values():
                value_sigs.add(op.source_sig)
                value_sigs.add(op.target_sig)
            diff = GenerationDiff(
                index=len(self._generation_diffs),
                comparison_ops=len(ops),
                new_comparison_ops=sum(
                    1 for sig in ops if sig not in comparisons_before
                ),
                value_ops=len(value_sigs),
                new_value_ops=sum(
                    1 for sig in value_sigs if sig not in values_before
                ),
            )
            if len(self._generation_diffs) < self._max_generation_diffs:
                self._generation_diffs.append(diff)
            return CompiledPlan(
                roots=compiled_roots,
                comparison_ops=tuple(ops.values()),
                value_op_count=len(value_sigs),
                comparison_node_count=node_count,
            )

    # -- introspection --------------------------------------------------------
    @property
    def value_op_count(self) -> int:
        """Unique value ops interned so far."""
        return len(self._value_ops)

    @property
    def comparison_op_count(self) -> int:
        """Unique comparison ops interned so far."""
        return len(self._comparison_ops)

    @property
    def generation_diffs(self) -> tuple[GenerationDiff, ...]:
        """Reuse records of every ``compile_population`` call so far."""
        with self._lock:
            return tuple(self._generation_diffs)

    @property
    def last_generation_diff(self) -> GenerationDiff | None:
        """The most recent generation's reuse record, if any."""
        with self._lock:
            return self._generation_diffs[-1] if self._generation_diffs else None

    def clear(self) -> None:
        with self._lock:
            self._value_sigs.clear()
            self._value_ops.clear()
            self._comparison_ops.clear()
            self._compiled.clear()
            self._generation_diffs.clear()
