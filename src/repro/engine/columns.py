"""Columnar storage for a fixed list of entity pairs.

:class:`PairStore` factors a pair list into its unique entities per
side plus integer index columns. Value ops are then materialised once
per *unique entity* instead of once per pair — on real workloads the
same entity appears in many candidate pairs (one A entity against a
whole block of B candidates), so this collapses both the number of
transformation evaluations and the per-pair dict lookups the seed
evaluator paid on its hot path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.entity import Entity
from repro.distances.registry import DistanceRegistry
from repro.distances.strings import StringKernelMemo, count_nonempty
from repro.engine.compiler import ComparisonOp, signature_token
from repro.engine.lru import LRUCache
from repro.engine.store import ColumnStore, column_key, pairs_fingerprint
from repro.engine.values import evaluate_value_op
from repro.transforms.registry import TransformationRegistry


def _index_side(
    pairs: Sequence[tuple[Entity, Entity]], side: int
) -> tuple[list[Entity], list[int]]:
    """Unique entities of one pair side plus the pair -> entity index.

    Keyed by the entity itself, not its uid: hashing costs only the uid
    hash, while full equality keeps degenerate pair lists (same uid,
    different properties) from sharing a column — the seed evaluator's
    uid-keyed cache silently merged those.
    """
    entities: list[Entity] = []
    positions: dict[Entity, int] = {}
    index: list[int] = []
    for pair in pairs:
        entity = pair[side]
        position = positions.get(entity)
        if position is None:
            position = len(entities)
            positions[entity] = position
            entities.append(entity)
        index.append(position)
    return entities, index


class PairStore:
    """Pair topology plus materialised value and distance columns.

    The store owns nothing persistent itself: the value cache (shared
    across stores, keyed by entity) and the distance-column cache
    (keyed per store) are handed in by the owning session, which
    enforces the LRU bounds and aggregates statistics.
    """

    def __init__(
        self,
        pairs: Sequence[tuple[Entity, Entity]],
        store_id: int,
        distances: DistanceRegistry,
        transforms: TransformationRegistry,
        value_cache: LRUCache,
        column_cache: LRUCache,
        persistent_store: ColumnStore | None = None,
        string_memo: StringKernelMemo | None = None,
    ):
        self._pairs = list(pairs)
        self._store_id = store_id
        self._distances = distances
        self._transforms = transforms
        self._value_cache = value_cache
        self._column_cache = column_cache
        self._persistent_store = persistent_store
        self._string_memo = string_memo
        #: Content fingerprint of the pair list, computed on first
        #: persistent lookup (hashing is wasted work without a store).
        self._pairs_fingerprint: str | None = None
        self._entities_a, index_a = _index_side(self._pairs, 0)
        self._entities_b, index_b = _index_side(self._pairs, 1)
        self._pair_index = list(zip(index_a, index_b))

    @property
    def pairs(self) -> list[tuple[Entity, Entity]]:
        return list(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    # -- value columns --------------------------------------------------------
    def value_column(
        self, sig, node, side: str
    ) -> list[tuple[str, ...]]:
        """Transformed value tuples of a value op, one per unique entity
        on the given side ('a' = pair sources, 'b' = pair targets)."""
        entities = self._entities_a if side == "a" else self._entities_b
        cache = self._value_cache
        transforms = self._transforms
        column: list[tuple[str, ...]] = []
        for entity in entities:
            # Keyed by the entity itself (not its uid): hashing costs the
            # uid hash, while equality protects a long-lived session from
            # uid collisions across unrelated sources. The pair side is
            # deliberately absent — transformed values depend only on
            # (value op, entity), so dedup workloads where an entity
            # appears on both sides share one entry.
            key = (sig, entity)
            values = cache.get(key)
            if values is None:
                values = evaluate_value_op(node, entity, transforms)
                cache.put(key, values)
            column.append(values)
        return column

    # -- distance columns -----------------------------------------------------
    def distance_column(self, op: ComparisonOp) -> np.ndarray:
        """Distances of a comparison op over all pairs.

        Pairs where either side has no values get ``INFINITE_DISTANCE``
        (they can never score above 0, Definition 7 note). The column
        is threshold-free: every threshold over the same (metric,
        source, target) shares it.

        Evaluation goes through the measure's batch API
        (:meth:`repro.distances.base.DistanceMeasure.evaluate_column`):
        batch-capable measures run vectorized kernels over the whole
        column, everything else takes the deduplicated per-pair
        fallback. Safe to call concurrently for different ops — the
        caches are thread-safe and the computation is pure, so races
        only cost duplicated work, never divergent results.
        """
        key = (self._store_id, op.sig)
        cached = self._column_cache.get(key)
        if cached is not None:
            return cached
        measure = self._distances.get(op.metric)
        # Fourth tier: the persistent cross-run store. Keys are pure
        # content hashes (pair-list fingerprint × threshold-free op
        # signature × measure identity), so a warm run over unchanged
        # sources loads the exact bytes an earlier run computed —
        # bit-identical scores — while a changed entity *or* a
        # reconfigured measure behind the same metric name changes the
        # key and misses cleanly.
        persistent = self._persistent_store
        persistent_key: str | None = None
        if persistent is not None:
            op_token = f"{signature_token(op.sig)}|{measure.cache_token()}"
            persistent_key = column_key(self._persist_fingerprint(), op_token)
            loaded = persistent.load(persistent_key, len(self._pairs))
            if loaded is not None:
                self._column_cache.put(key, loaded)
                return loaded
        values_a = self.value_column(op.source_sig, op.source, "a")
        values_b = self.value_column(op.target_sig, op.target, "b")
        columns_a = [values_a[index_a] for index_a, _ in self._pair_index]
        columns_b = [values_b[index_b] for _, index_b in self._pair_index]
        memo = self._string_memo
        if measure.memo_capable and memo is not None:
            # Memo-capable measures take the session's string-kernel
            # memo (encode caches) and record their own batch/fallback
            # routing split internally.
            out = measure.evaluate_column(columns_a, columns_b, memo=memo)
        else:
            out = measure.evaluate_column(columns_a, columns_b)
            if memo is not None:
                pairs = count_nonempty(columns_a, columns_b)
                if measure.batch_capable:
                    memo.record_routing(op.metric, batch=pairs)
                else:
                    memo.record_routing(op.metric, fallback=pairs)
        if out.shape != (len(self._pairs),) or out.dtype != np.float64:
            raise ValueError(
                f"measure {op.metric!r} returned a malformed batch column: "
                f"shape {out.shape}, dtype {out.dtype}"
            )
        out.setflags(write=False)
        if persistent is not None and persistent_key is not None:
            persistent.save(
                persistent_key,
                out,
                meta={"metric": op.metric, "op": signature_token(op.sig)},
            )
        self._column_cache.put(key, out)
        return out

    def _persist_fingerprint(self) -> str:
        """Content fingerprint of this store's pair list (lazy)."""
        fingerprint = self._pairs_fingerprint
        if fingerprint is None:
            fingerprint = pairs_fingerprint(self._pairs)
            self._pairs_fingerprint = fingerprint
        return fingerprint
