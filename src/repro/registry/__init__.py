"""Multi-tenant rule registry: versioned lineages, activation, migration.

The registry turns learned linkage rules from ad-hoc dicts passed into
one job into **named, versioned, served artefacts**. A lineage
(``tenant/scenario/name``) collects the immutable, content-hashed
versions of one rule line; an activation pointer says which version a
bare ``@active`` reference serves; and the migration pass re-validates
any stored version against a drifted source schema, producing an
explicit :class:`~repro.registry.migrate.GapReport` instead of the
silent zero-score a missing property otherwise causes.

The service layer (:mod:`repro.service`) resolves job rules through
this package: ``LinkageService.submit(..., rule="t/s/n@active")`` pins
the active version at submission time and records the resolved
reference plus content hash on the job record, so any job is exactly
reproducible later — whatever the activation pointer says by then.
"""

from repro.registry.migrate import (
    GapReport,
    MigrationError,
    PatchResult,
    SchemaGap,
    SchemaGapError,
    auto_patch,
    check_rule,
    migrate_version,
)
from repro.registry.refs import RefError, RuleRef
from repro.registry.store import (
    RULES_DIR_ENV,
    CorruptVersion,
    NoActivation,
    RegistryError,
    RuleRegistry,
    RuleVersion,
    UnknownLineage,
    UnknownVersion,
    resolve_rules_dir,
    rule_content_hash,
)

__all__ = [
    "RULES_DIR_ENV",
    "CorruptVersion",
    "GapReport",
    "MigrationError",
    "NoActivation",
    "PatchResult",
    "RefError",
    "RegistryError",
    "RuleRef",
    "RuleRegistry",
    "RuleVersion",
    "SchemaGap",
    "SchemaGapError",
    "UnknownLineage",
    "UnknownVersion",
    "auto_patch",
    "check_rule",
    "migrate_version",
    "resolve_rules_dir",
    "rule_content_hash",
]
