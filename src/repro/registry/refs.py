"""Rule references: the grammar clients name registry rules by.

A reference selects one rule version out of a lineage::

    tenant/scenario/name          # the lineage's active version
    tenant/scenario/name@active   # the same, explicitly
    tenant/scenario/name@v3       # version 3, pinned

The three slash-separated segments mirror a production matcher's scope
hierarchy: *tenant* isolates customers, *scenario* isolates workloads
within a tenant (one tenant typically links several dataset pairs),
*name* distinguishes rule lines within a scenario (a learned rule next
to a hand-tuned one). Segments are restricted to a filesystem- and
shell-safe alphabet because they become directory names in the
:class:`~repro.registry.store.RuleRegistry` layout and appear verbatim
in job records and CLI output.

Version selectors are resolved exactly once, at submission time: a job
record never stores ``@active`` — the service pins it to the concrete
``@vN`` so re-running the recorded reference reproduces the original
links even after the activation pointer moved on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

#: One path segment: leading alphanumeric, then alphanumerics, dots,
#: underscores and dashes. Deliberately excludes ``/`` and ``@`` (the
#: grammar's own separators) and anything a filesystem would mangle.
_SEGMENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Version selector: ``v`` + positive decimal, e.g. ``v3``.
_VERSION = re.compile(r"^v([1-9][0-9]*)$")


class RefError(ValueError):
    """A malformed rule reference."""


@dataclass(frozen=True)
class RuleRef:
    """A parsed rule reference.

    ``version is None`` means the active-version selector (whether it
    was written ``@active`` or left implicit); an integer pins one
    immutable version. :meth:`parse` and ``str()`` round-trip.
    """

    tenant: str
    scenario: str
    name: str
    version: int | None = None

    def __post_init__(self) -> None:
        for label, segment in (
            ("tenant", self.tenant),
            ("scenario", self.scenario),
            ("name", self.name),
        ):
            if not _SEGMENT.match(segment):
                raise RefError(
                    f"invalid {label} segment {segment!r}: segments are "
                    f"alphanumeric plus '._-' (leading alphanumeric)"
                )
        if self.version is not None and self.version < 1:
            raise RefError(f"version must be >= 1, got {self.version}")

    @classmethod
    def parse(cls, text: str | "RuleRef") -> "RuleRef":
        """Parse ``tenant/scenario/name[@vN|@active]`` (idempotent for
        already-parsed references)."""
        if isinstance(text, RuleRef):
            return text
        if not isinstance(text, str):
            raise RefError(
                f"a rule reference is a string, got {type(text).__name__}"
            )
        body, sep, selector = text.partition("@")
        segments = body.split("/")
        if len(segments) != 3:
            raise RefError(
                f"invalid rule reference {text!r}: expected "
                f"tenant/scenario/name[@vN|@active]"
            )
        version: int | None = None
        if sep:
            if selector == "active":
                version = None
            else:
                match = _VERSION.match(selector)
                if not match:
                    raise RefError(
                        f"invalid version selector {selector!r} in {text!r}: "
                        f"expected @vN or @active"
                    )
                version = int(match.group(1))
        return cls(segments[0], segments[1], segments[2], version)

    @property
    def lineage(self) -> str:
        """The reference without its version selector."""
        return f"{self.tenant}/{self.scenario}/{self.name}"

    @property
    def pinned(self) -> bool:
        """Whether this reference names one immutable version."""
        return self.version is not None

    def at(self, version: int) -> "RuleRef":
        """This lineage pinned to ``version``."""
        return replace(self, version=version)

    def __str__(self) -> str:
        if self.version is None:
            return f"{self.lineage}@active"
        return f"{self.lineage}@v{self.version}"
