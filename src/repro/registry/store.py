"""The file-backed rule registry: named lineages, immutable versions,
activation pointers.

Layout (one directory per lineage, mirroring the reference grammar)::

    <root>/<tenant>/<scenario>/<name>/
        versions/v000001.json    # immutable version records
        versions/v000002.json
        active.json              # activation pointer ("serve v2")

Version records are **immutable and content-hashed**: the record
carries the rule dict, a ``sha256`` of its canonical JSON and the
publication provenance (who/what/why — learning dataset fingerprints,
fitness, migration diffs). Publication follows the repo-wide
persistence discipline (write the full payload to a temp file first)
but publishes with ``os.link`` instead of ``os.replace``: a hard link
is atomic *and* exclusive, so two publishers racing for the same
version number get distinct versions — the loser's link fails with
``FileExistsError`` and it retries under the next number. Nothing ever
rewrites a published version file; the only mutable file in a lineage
is the activation pointer, which is replaced atomically
(``os.replace``) so readers resolving ``@active`` always see a
complete pointer to a complete version.

Loading re-hashes the stored rule and compares against the recorded
hash — a damaged or hand-edited version file surfaces as
:class:`CorruptVersion` instead of silently serving a different rule
than was published.
"""

from __future__ import annotations

import difflib
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.core.rule import LinkageRule
from repro.core.serialization import render_rule, rule_from_dict, rule_to_dict
from repro.registry.refs import RefError, RuleRef

#: Environment variable naming the default registry directory when a
#: registry (or a service resolving rule references) is constructed
#: without an explicit ``rules_dir``.
RULES_DIR_ENV = "REPRO_RULES_DIR"

#: Width of the zero-padded version field in filenames: lexicographic
#: order equals numeric order for any realistic lineage length.
_VERSION_WIDTH = 6


class RegistryError(RuntimeError):
    """Base class of registry resolution/publication failures."""


class UnknownLineage(RegistryError, KeyError):
    """The referenced lineage has no published versions."""


class UnknownVersion(RegistryError, KeyError):
    """The referenced version does not exist in the lineage."""


class NoActivation(RegistryError):
    """``@active`` was resolved against a lineage that has versions but
    no activation pointer — an explicit operator decision is missing,
    which is a terminal condition, not something to guess around."""


class CorruptVersion(RegistryError):
    """A version record whose stored rule no longer matches its
    recorded content hash (or fails to parse at all)."""


def rule_content_hash(rule: dict[str, Any]) -> str:
    """The canonical content hash of a serialised rule: sha256 over
    sorted-keys compact JSON, so hash equality is rule-dict equality
    regardless of key order or formatting."""
    canonical = json.dumps(rule, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RuleVersion:
    """One immutable published rule version.

    ``rule`` is the serialised dict (:func:`~repro.core.serialization.
    rule_to_dict` form); :meth:`linkage_rule` rebuilds the tree.
    ``provenance`` is the publisher-supplied metadata dict (learning
    dataset fingerprints, fitness, migration diff, notes) with the
    registry-stamped ``created_at``/``published_by`` fields alongside.
    """

    ref: RuleRef
    rule: dict[str, Any]
    rule_hash: str
    created_at: float
    provenance: dict[str, Any] = field(default_factory=dict)

    @property
    def version(self) -> int:
        assert self.ref.version is not None
        return self.ref.version

    def linkage_rule(self) -> LinkageRule:
        """The stored rule as a live tree (validated on rebuild)."""
        return rule_from_dict(self.rule)

    def to_payload(self) -> dict[str, Any]:
        return {
            "ref": str(self.ref),
            "version": self.version,
            "rule": self.rule,
            "rule_hash": self.rule_hash,
            "created_at": self.created_at,
            "provenance": self.provenance,
        }


def resolve_rules_dir(
    rules_dir: str | os.PathLike | None = None,
    default: str | os.PathLike | None = None,
) -> Path | None:
    """The registry directory in force: explicit argument, then
    :data:`RULES_DIR_ENV`, then ``default`` (a service's
    ``<root>/rules``), then ``None`` (no registry configured)."""
    if rules_dir is not None:
        return Path(rules_dir)
    env = os.environ.get(RULES_DIR_ENV, "").strip()
    if env:
        return Path(env)
    if default is not None:
        return Path(default)
    return None


class RuleRegistry:
    """A multi-tenant rule store over one directory tree.

    Safe for concurrent publishers, activators and readers in separate
    processes: version publication is exclusive-and-atomic (hard link
    of a fully-written temp file), activation is an atomic pointer
    replace, and every read re-verifies the content hash.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    # -- publication -------------------------------------------------------
    def publish(
        self,
        ref: str | RuleRef,
        rule: LinkageRule | dict[str, Any],
        provenance: dict[str, Any] | None = None,
    ) -> RuleVersion:
        """Publish a rule as the lineage's next version.

        ``ref`` names the lineage (a version selector, if present, is
        ignored — version numbers are assigned by the registry, never
        by the publisher). The rule is validated by a full
        dict -> tree -> dict round trip before anything is written, so
        the registry never stores a rule it cannot later serve.
        Racing publishers both succeed, under distinct versions.
        """
        lineage = RuleRef.parse(ref)
        if isinstance(rule, LinkageRule):
            rule_dict = rule_to_dict(rule)
        else:
            # Validate and normalise: storing the re-serialised form
            # makes the content hash independent of optional-field
            # spelling (e.g. an omitted default weight).
            rule_dict = rule_to_dict(rule_from_dict(rule))
        rule_hash = rule_content_hash(rule_dict)
        versions_dir = self._versions_dir(lineage)
        versions_dir.mkdir(parents=True, exist_ok=True)

        payload = {
            "rule": rule_dict,
            "rule_hash": rule_hash,
            "provenance": dict(provenance or {}),
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(versions_dir), prefix="publish-", suffix=".tmp"
        )
        try:
            version = self._next_version(versions_dir)
            while True:
                created_at = time.time()
                payload["version"] = version
                payload["ref"] = str(lineage.at(version))
                payload["created_at"] = created_at
                with os.fdopen(
                    os.dup(fd), "w", encoding="utf-8"
                ) as handle:
                    handle.seek(0)
                    handle.truncate()
                    json.dump(payload, handle, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                try:
                    os.link(tmp, versions_dir / self._version_name(version))
                except FileExistsError:
                    # Another publisher won this number; take the next.
                    version = max(version + 1, self._next_version(versions_dir))
                    continue
                break
        finally:
            os.close(fd)
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return RuleVersion(
            ref=lineage.at(version),
            rule=rule_dict,
            rule_hash=rule_hash,
            created_at=created_at,
            provenance=dict(payload["provenance"]),
        )

    # -- activation --------------------------------------------------------
    def activate(self, ref: str | RuleRef) -> RuleVersion:
        """Point the lineage's ``@active`` selector at ``ref``'s pinned
        version (which must exist). Returns the activated version."""
        pinned = RuleRef.parse(ref)
        if not pinned.pinned:
            raise RefError(
                f"activation needs a pinned version (got {pinned}); "
                f"use tenant/scenario/name@vN"
            )
        version = self.resolve(pinned)  # existence + integrity check
        pointer = self._active_path(pinned)
        fd, tmp = tempfile.mkstemp(
            dir=str(pointer.parent), prefix="active-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {"version": version.version, "activated_at": time.time()},
                    handle,
                )
            os.replace(tmp, pointer)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return version

    def active_version(self, ref: str | RuleRef) -> int | None:
        """The lineage's activated version number, or ``None`` when no
        activation pointer exists."""
        lineage = RuleRef.parse(ref)
        try:
            payload = json.loads(
                self._active_path(lineage).read_text(encoding="utf-8")
            )
        except FileNotFoundError:
            return None
        except ValueError as error:  # pragma: no cover - atomic replace
            raise CorruptVersion(
                f"activation pointer of {lineage.lineage} is unreadable: "
                f"{error}"
            ) from None
        return int(payload["version"])

    # -- resolution --------------------------------------------------------
    def resolve(self, ref: str | RuleRef) -> RuleVersion:
        """Resolve a reference to its immutable version record.

        ``@vN`` loads that version; ``@active`` (or no selector) reads
        the activation pointer first. Raises :class:`UnknownLineage`,
        :class:`UnknownVersion`, :class:`NoActivation` or
        :class:`CorruptVersion` — all :class:`RegistryError`."""
        parsed = RuleRef.parse(ref)
        versions_dir = self._versions_dir(parsed)
        if parsed.version is None:
            active = self.active_version(parsed)
            if active is None:
                if not self._lineage_exists(parsed):
                    raise UnknownLineage(
                        f"unknown lineage {parsed.lineage!r}: no published "
                        f"versions under {self.root}"
                    )
                raise NoActivation(
                    f"lineage {parsed.lineage!r} has no active version: "
                    f"published versions are "
                    f"{[v.version for v in self.versions(parsed)]}, "
                    f"activate one with tenant/scenario/name@vN"
                )
            parsed = parsed.at(active)
        path = versions_dir / self._version_name(parsed.version)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            if not self._lineage_exists(parsed):
                raise UnknownLineage(
                    f"unknown lineage {parsed.lineage!r}: no published "
                    f"versions under {self.root}"
                ) from None
            raise UnknownVersion(
                f"no version v{parsed.version} in lineage "
                f"{parsed.lineage!r}: published versions are "
                f"{[v.version for v in self.versions(parsed)]}"
            ) from None
        except ValueError as error:
            raise CorruptVersion(
                f"version record {parsed} at {path} is unreadable: {error}"
            ) from None
        return self._validated(parsed, path, payload)

    def versions(self, ref: str | RuleRef) -> list[RuleVersion]:
        """All published versions of a lineage, oldest first."""
        lineage = RuleRef.parse(ref)
        versions_dir = self._versions_dir(lineage)
        if not versions_dir.is_dir():
            return []
        out: list[RuleVersion] = []
        for path in sorted(versions_dir.glob("v*.json")):
            try:
                number = int(path.stem[1:])
            except ValueError:
                continue
            out.append(self.resolve(lineage.at(number)))
        return out

    def lineages(
        self, tenant: str | None = None, scenario: str | None = None
    ) -> list[RuleRef]:
        """All lineages with at least one published version, sorted,
        optionally filtered by tenant and scenario."""
        if not self.root.is_dir():
            return []
        found: list[RuleRef] = []
        for versions_dir in sorted(self.root.glob("*/*/*/versions")):
            name_dir = versions_dir.parent
            if not any(versions_dir.glob("v*.json")):
                continue
            try:
                lineage = RuleRef(
                    name_dir.parent.parent.name,
                    name_dir.parent.name,
                    name_dir.name,
                )
            except RefError:  # pragma: no cover - foreign directory
                continue
            if tenant is not None and lineage.tenant != tenant:
                continue
            if scenario is not None and lineage.scenario != scenario:
                continue
            found.append(lineage)
        return found

    # -- comparison --------------------------------------------------------
    def diff(self, ref_a: str | RuleRef, ref_b: str | RuleRef) -> list[str]:
        """Human-readable structural diff between two versions: a
        unified diff of their rendered trees (empty when the rules are
        identical — e.g. a republished unchanged rule)."""
        version_a = self.resolve(ref_a)
        version_b = self.resolve(ref_b)
        if version_a.rule_hash == version_b.rule_hash:
            return []
        render_a = render_rule(
            version_a.linkage_rule(), title=str(version_a.ref)
        ).splitlines()
        render_b = render_rule(
            version_b.linkage_rule(), title=str(version_b.ref)
        ).splitlines()
        return list(
            difflib.unified_diff(
                render_a,
                render_b,
                fromfile=str(version_a.ref),
                tofile=str(version_b.ref),
                lineterm="",
            )
        )

    def describe(self) -> dict:
        """Registry summary for health checks and ``rules list``."""
        lineages = self.lineages()
        return {
            "path": str(self.root),
            "lineages": len(lineages),
            "versions": sum(len(self.versions(ref)) for ref in lineages),
        }

    # -- internals ---------------------------------------------------------
    def _validated(
        self, ref: RuleRef, path: Path, payload: dict
    ) -> RuleVersion:
        rule = payload.get("rule")
        recorded = payload.get("rule_hash")
        if not isinstance(rule, dict) or not recorded:
            raise CorruptVersion(
                f"version record {ref} at {path} is missing its rule or hash"
            )
        actual = rule_content_hash(rule)
        if actual != recorded:
            raise CorruptVersion(
                f"version record {ref} at {path} failed its content-hash "
                f"check: recorded {recorded[:12]}…, stored rule hashes to "
                f"{actual[:12]}… — the published record was modified"
            )
        return RuleVersion(
            ref=ref,
            rule=rule,
            rule_hash=recorded,
            created_at=float(payload.get("created_at", 0.0)),
            provenance=dict(payload.get("provenance") or {}),
        )

    def _lineage_exists(self, ref: RuleRef) -> bool:
        versions_dir = self._versions_dir(ref)
        return versions_dir.is_dir() and any(versions_dir.glob("v*.json"))

    def _next_version(self, versions_dir: Path) -> int:
        highest = 0
        for path in versions_dir.glob("v*.json"):
            try:
                highest = max(highest, int(path.stem[1:]))
            except ValueError:
                continue
        return highest + 1

    @staticmethod
    def _version_name(version: int) -> str:
        return f"v{version:0{_VERSION_WIDTH}d}.json"

    def _lineage_dir(self, ref: RuleRef) -> Path:
        return self.root / ref.tenant / ref.scenario / ref.name

    def _versions_dir(self, ref: RuleRef) -> Path:
        return self._lineage_dir(ref) / "versions"

    def _active_path(self, ref: RuleRef) -> Path:
        return self._lineage_dir(ref) / "active.json"

    def __iter__(self) -> Iterator[RuleRef]:
        return iter(self.lineages())
