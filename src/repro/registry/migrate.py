"""Schema migration: re-validate stored rules against drifted sources.

A stored rule is only as good as the schema it was learned on. When a
source drops or renames a property, every comparison reading it starts
scoring 0.0 — silently, because an absent property is
indistinguishable from an unset one at evaluation time. The migration
pass makes that drift *explicit*: :func:`check_rule` walks the rule
against the live schemas of both sources and returns a
:class:`GapReport` naming every affected node (the missing property's
path, which side reads it, the comparison it starves) together with a
suggested fallback — substitute the closest surviving property, prune
the starved comparison, or nothing salvageable.

:func:`auto_patch` applies those suggestions structurally: property
substitutions rewrite the value tree in place, unsalvageable
comparisons are pruned out of their parent aggregation, and the
before/after rendering diff is recorded so the patch is auditable.
A rule that cannot be patched into a gap-free form (its root
comparison is starved, or an aggregation would lose every child)
raises :class:`MigrationError` — degraded service is an operator
decision, never an automatic one.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    RuleNode,
    TransformationNode,
    ValueNode,
)
from repro.core.rule import LinkageRule
from repro.core.serialization import render_rule


class MigrationError(RuntimeError):
    """A rule cannot be (auto-)migrated onto the changed schema."""


class SchemaGapError(MigrationError):
    """A rule was about to execute against a schema it has gaps on.

    Raised by the service execution path instead of letting the starved
    comparisons score 0.0 silently; carries the full :class:`GapReport`
    so the job record can store the structured payload, not just a
    message."""

    def __init__(self, report: "GapReport"):
        super().__init__(report.describe())
        self.report = report


@dataclass(frozen=True)
class SchemaGap:
    """One property the rule reads that no entity of the source has.

    ``path`` locates the starved :class:`PropertyNode` from the rule
    root (``root.operators[1].source.inputs[0]`` style); ``side`` says
    which source's schema it was checked against; ``comparison`` and
    ``comparison_path`` identify the comparison whose score the gap
    zeroes. ``suggestion`` is one of ``substitute:<property>`` (a
    close-named surviving property), ``prune`` (drop the comparison —
    its parent aggregation keeps other children) or ``none``.
    """

    path: str
    side: str
    property_name: str
    comparison: str
    comparison_path: str
    suggestion: str

    def describe(self) -> str:
        return (
            f"{self.side} property {self.property_name!r} missing "
            f"(at {self.path}, starves {self.comparison}; "
            f"suggestion: {self.suggestion})"
        )


@dataclass(frozen=True)
class GapReport:
    """The migration check's structured outcome.

    ``ok`` means every property the rule reads still exists on the
    corresponding source's schema. ``gaps`` lists every starved node —
    the report is exhaustive, not first-failure."""

    schema_a: str
    schema_b: str
    gaps: tuple[SchemaGap, ...] = ()
    ref: str | None = None
    #: Distinct (side, property) pairs the rule reads — the check's
    #: coverage denominator.
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.gaps

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe form, stored on job records and printed by
        ``rules migrate``."""
        return {
            "ok": self.ok,
            "ref": self.ref,
            "schema_a": self.schema_a,
            "schema_b": self.schema_b,
            "checked": self.checked,
            "gaps": [
                {
                    "path": gap.path,
                    "side": gap.side,
                    "property": gap.property_name,
                    "comparison": gap.comparison,
                    "comparison_path": gap.comparison_path,
                    "suggestion": gap.suggestion,
                }
                for gap in self.gaps
            ],
        }

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        if self.ok:
            return (
                f"ok: {self.checked} property reference(s) all present on "
                f"{self.schema_a!r} / {self.schema_b!r}"
            )
        lines = [
            f"{len(self.gaps)} gap(s) against {self.schema_a!r} / "
            f"{self.schema_b!r}:"
        ]
        lines += [f"  - {gap.describe()}" for gap in self.gaps]
        return "\n".join(lines)


@dataclass(frozen=True)
class PatchResult:
    """An applied auto-patch: the gap-free rule plus its audit trail."""

    rule: LinkageRule
    report: GapReport
    #: One line per structural edit (substitution or prune).
    applied: tuple[str, ...]
    #: Unified diff of the before/after tree renderings.
    diff: tuple[str, ...] = ()


def _schema(source) -> frozenset[str]:
    """A source's live property schema. Accepts anything with
    ``property_names()`` (a :class:`~repro.data.source.DataSource`) or
    a plain iterable of names, so checks can run against recorded
    schemas without materialising the source."""
    names = source.property_names() if hasattr(source, "property_names") else source
    return frozenset(names)


def _schema_name(source, fallback: str) -> str:
    return getattr(source, "name", None) or fallback


def _suggest(
    missing: str, schema: frozenset[str], prunable: bool
) -> str:
    """The fallback for one starved property: the closest surviving
    name when the drift looks like a rename, else a prune when the
    surrounding aggregation survives without the comparison."""
    matches = difflib.get_close_matches(missing, sorted(schema), n=1, cutoff=0.6)
    if matches:
        return f"substitute:{matches[0]}"
    if prunable:
        return "prune"
    return "none"


def _value_gaps(
    node: ValueNode,
    path: str,
    side: str,
    schema: frozenset[str],
    comparison: ComparisonNode,
    comparison_path: str,
    prunable: bool,
    gaps: list[SchemaGap],
    seen: set[tuple[str, str]],
) -> None:
    if isinstance(node, PropertyNode):
        seen.add((side, node.property_name))
        if node.property_name not in schema:
            gaps.append(
                SchemaGap(
                    path=path,
                    side=side,
                    property_name=node.property_name,
                    comparison=str(comparison),
                    comparison_path=comparison_path,
                    suggestion=_suggest(node.property_name, schema, prunable),
                )
            )
        return
    for index, child in enumerate(node.inputs):
        _value_gaps(
            child,
            f"{path}.inputs[{index}]",
            side,
            schema,
            comparison,
            comparison_path,
            prunable,
            gaps,
            seen,
        )


def _similarity_gaps(
    node: RuleNode,
    path: str,
    schema_a: frozenset[str],
    schema_b: frozenset[str],
    prunable: bool,
    gaps: list[SchemaGap],
    seen: set[tuple[str, str]],
) -> None:
    if isinstance(node, ComparisonNode):
        _value_gaps(
            node.source, f"{path}.source", "source", schema_a,
            node, path, prunable, gaps, seen,
        )
        _value_gaps(
            node.target, f"{path}.target", "target", schema_b,
            node, path, prunable, gaps, seen,
        )
        return
    assert isinstance(node, AggregationNode)
    child_prunable = len(node.operators) > 1
    for index, child in enumerate(node.operators):
        _similarity_gaps(
            child,
            f"{path}.operators[{index}]",
            schema_a,
            schema_b,
            child_prunable,
            gaps,
            seen,
        )


def check_rule(
    rule: LinkageRule,
    source_a,
    source_b,
    ref: str | None = None,
) -> GapReport:
    """Validate every property reference in ``rule`` against the live
    schemas of both sources; returns the exhaustive :class:`GapReport`.

    ``source_a``/``source_b`` are :class:`~repro.data.source.DataSource`
    instances (or plain property-name iterables). The source side of
    each comparison is checked against ``source_a``'s schema, the
    target side against ``source_b``'s — the same positional contract
    the engine evaluates under.
    """
    schema_a = _schema(source_a)
    schema_b = _schema(source_b)
    gaps: list[SchemaGap] = []
    seen: set[tuple[str, str]] = set()
    _similarity_gaps(
        rule.root, "root", schema_a, schema_b, False, gaps, seen
    )
    return GapReport(
        schema_a=_schema_name(source_a, "A"),
        schema_b=_schema_name(source_b, "B"),
        gaps=tuple(gaps),
        ref=ref,
        checked=len(seen),
    )


def _patch_value(
    node: ValueNode,
    schema: frozenset[str],
    side: str,
    applied: list[str],
) -> ValueNode | None:
    """Substitute starved properties in a value tree; ``None`` when a
    property has no close-named survivor (the comparison must go)."""
    if isinstance(node, PropertyNode):
        if node.property_name in schema:
            return node
        matches = difflib.get_close_matches(
            node.property_name, sorted(schema), n=1, cutoff=0.6
        )
        if not matches:
            return None
        applied.append(
            f"substituted {side} property {node.property_name!r} -> "
            f"{matches[0]!r}"
        )
        return PropertyNode(matches[0])
    patched_inputs = []
    for child in node.inputs:
        patched = _patch_value(child, schema, side, applied)
        if patched is None:
            return None
        patched_inputs.append(patched)
    if tuple(patched_inputs) == node.inputs:
        return node
    return replace(node, inputs=tuple(patched_inputs))


def _patch_similarity(
    node: RuleNode,
    schema_a: frozenset[str],
    schema_b: frozenset[str],
    applied: list[str],
) -> RuleNode | None:
    if isinstance(node, ComparisonNode):
        source = _patch_value(node.source, schema_a, "source", applied)
        target = _patch_value(node.target, schema_b, "target", applied)
        if source is None or target is None:
            applied.append(f"pruned {node}")
            return None
        if source is node.source and target is node.target:
            return node
        return replace(node, source=source, target=target)
    assert isinstance(node, AggregationNode)
    survivors = []
    for child in node.operators:
        patched = _patch_similarity(child, schema_a, schema_b, applied)
        if patched is not None:
            survivors.append(patched)
    if not survivors:
        return None
    if tuple(survivors) == node.operators:
        return node
    return replace(node, operators=tuple(survivors))


def auto_patch(
    rule: LinkageRule,
    source_a,
    source_b,
    ref: str | None = None,
) -> PatchResult:
    """Patch a rule onto the changed schema, recording every edit.

    Starved properties with a close-named survivor are substituted;
    comparisons that cannot be repaired are pruned from their parent
    aggregation. Raises :class:`MigrationError` when no gap-free rule
    remains (the root itself is starved, or an aggregation would lose
    all children) — and, defensively, when the patched rule still
    reports gaps."""
    report = check_rule(rule, source_a, source_b, ref=ref)
    if report.ok:
        return PatchResult(rule=rule, report=report, applied=())
    schema_a = _schema(source_a)
    schema_b = _schema(source_b)
    applied: list[str] = []
    patched_root = _patch_similarity(rule.root, schema_a, schema_b, applied)
    if patched_root is None:
        raise MigrationError(
            f"rule cannot be auto-patched onto "
            f"{report.schema_a!r} / {report.schema_b!r}: no comparison "
            f"survives the gaps\n{report.describe()}"
        )
    patched = LinkageRule(patched_root)  # type: ignore[arg-type]
    residual = check_rule(patched, source_a, source_b, ref=ref)
    if not residual.ok:  # pragma: no cover - substitution is schema-closed
        raise MigrationError(
            f"auto-patch left residual gaps:\n{residual.describe()}"
        )
    diff = tuple(
        difflib.unified_diff(
            render_rule(rule, title="before").splitlines(),
            render_rule(patched, title="after").splitlines(),
            fromfile="before",
            tofile="after",
            lineterm="",
        )
    )
    return PatchResult(
        rule=patched, report=report, applied=tuple(applied), diff=diff
    )


def migrate_version(
    registry,
    ref,
    source_a,
    source_b,
    apply: bool = False,
):
    """Run the migration pass for one stored version.

    Returns ``(report, published)``: the :class:`GapReport`, plus the
    newly published patched :class:`~repro.registry.store.RuleVersion`
    when ``apply`` is true and gaps were found (``None`` otherwise —
    a gap-free rule needs no new version). The published version's
    provenance records what it was migrated from, every structural
    edit, and the rendering diff."""
    version = registry.resolve(ref)
    rule = version.linkage_rule()
    report = check_rule(rule, source_a, source_b, ref=str(version.ref))
    if report.ok or not apply:
        return report, None
    result = auto_patch(rule, source_a, source_b, ref=str(version.ref))
    published = registry.publish(
        version.ref,
        result.rule,
        provenance={
            "migrated_from": str(version.ref),
            "migration_gaps": report.to_payload()["gaps"],
            "migration_applied": list(result.applied),
            "migration_diff": list(result.diff),
            "schema_a": report.schema_a,
            "schema_b": report.schema_b,
        },
    )
    return report, published
