"""Random linkage rule generation (Section 5.1).

A random rule consists of a random aggregation over one or two
comparisons. Each comparison draws a property pair — either from the
pre-computed compatible pair list (seeded mode, Algorithm 2) or
uniformly from the two schemata (the fully random mode used as the
baseline in Table 14) — and, with 50% probability, a random unary
transformation is appended to each property.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.compatible import CompatibleProperty
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
)
from repro.core.representation import FULL, Representation
from repro.core.rule import LinkageRule
from repro.distances.registry import DistanceRegistry
from repro.distances.registry import default_registry as default_distances
from repro.transforms.registry import TransformationRegistry
from repro.transforms.registry import default_registry as default_transforms

#: Probability of appending a transformation to each property (§5.1).
TRANSFORMATION_PROBABILITY = 0.5

#: Probability that a seeded comparison draws a random measure from the
#: full catalogue instead of the measure Algorithm 2 detected. Without
#: this exploration the gene pool would never contain measures absent
#: from the seeding list (e.g. jaccard, which the tokenize+jaccard
#: recipe of Section 3 needs), because crossover only recombines
#: existing material.
MEASURE_EXPLORATION_PROBABILITY = 0.25

#: Probability that a seeded string comparison is generated at token
#: level: jaccard over tokenize(lowerCase(p)) on both sides. This is
#: the form in which Algorithm 2 actually established compatibility
#: (it tokenises and lower-cases the values before testing), and it is
#: what gives the paper its strong iteration-0 populations (e.g. Cora
#: starts at 0.877 in Table 7).
TOKEN_SEED_PROBABILITY = 0.35

#: Maximum random weight for wmean aggregation children.
MAX_RANDOM_WEIGHT = 10


class RandomRuleGenerator:
    """Generates random linkage rules for seeding and mutation."""

    def __init__(
        self,
        compatible_pairs: Sequence[CompatibleProperty],
        rng: random.Random,
        representation: Representation = FULL,
        distances: DistanceRegistry | None = None,
        transforms: TransformationRegistry | None = None,
        source_properties: Sequence[str] = (),
        target_properties: Sequence[str] = (),
        transformation_probability: float = TRANSFORMATION_PROBABILITY,
        measure_exploration: float = MEASURE_EXPLORATION_PROBABILITY,
    ):
        """Create a generator.

        When ``compatible_pairs`` is empty the generator falls back to
        uniform sampling over ``source_properties`` x
        ``target_properties`` with a random measure — the unseeded
        baseline of Table 14.
        """
        self._pairs = list(compatible_pairs)
        self._rng = rng
        self._representation = representation
        self._distances = distances if distances is not None else default_distances()
        self._transforms = (
            transforms if transforms is not None else default_transforms()
        )
        self._source_properties = list(source_properties)
        self._target_properties = list(target_properties)
        self._transformation_probability = transformation_probability
        self._measure_exploration = measure_exploration
        if not self._pairs and not (
            self._source_properties and self._target_properties
        ):
            raise ValueError(
                "need either compatible pairs or source/target property lists"
            )
        #: Measures eligible for unseeded / exploratory comparisons.
        self._fallback_measures = [
            name
            for name in (
                "levenshtein",
                "normalizedLevenshtein",
                "jaccard",
                "numeric",
                "geographic",
                "date",
            )
            if name in self._distances
        ]

    @property
    def representation(self) -> Representation:
        return self._representation

    # -- public API -----------------------------------------------------------
    def random_rule(self) -> LinkageRule:
        """A random rule: aggregation over 1-2 comparisons (§5.1)."""
        comparison_count = self._rng.randint(1, 2)
        comparisons = tuple(
            self.random_comparison() for _ in range(comparison_count)
        )
        function = self._rng.choice(self._representation.aggregation_functions)
        root: SimilarityNode = AggregationNode(
            function=function, operators=comparisons
        )
        return LinkageRule(self._representation.repair(root, self._rng))

    def random_comparison(self) -> ComparisonNode:
        """A random comparison over a (seeded or uniform) property pair."""
        if self._pairs:
            pair = self._rng.choice(self._pairs)
            source_property = pair.source_property
            target_property = pair.target_property
            metric = pair.measure
            if (
                metric == "levenshtein"
                and self._representation.allow_transformations
                and self._transformation_probability > 0.0
                and "jaccard" in self._distances
                and self._rng.random() < TOKEN_SEED_PROBABILITY
            ):
                return self._token_comparison(source_property, target_property)
            if self._rng.random() < self._measure_exploration:
                metric = self._rng.choice(self._fallback_measures)
        else:
            source_property = self._rng.choice(self._source_properties)
            target_property = self._rng.choice(self._target_properties)
            metric = self._rng.choice(self._fallback_measures)
        return ComparisonNode(
            metric=metric,
            threshold=self.random_threshold(metric),
            source=self._random_value_node(source_property),
            target=self._random_value_node(target_property),
            weight=self.random_weight(),
        )

    def _token_comparison(
        self, source_property: str, target_property: str
    ) -> ComparisonNode:
        """Jaccard over tokenised, lower-cased values — the exact form
        in which Algorithm 2 established the pair's compatibility."""

        def tokens(property_name: str) -> ValueNode:
            return TransformationNode(
                "tokenize",
                (
                    TransformationNode(
                        "lowerCase", (PropertyNode(property_name),)
                    ),
                ),
            )

        return ComparisonNode(
            metric="jaccard",
            threshold=self.random_threshold("jaccard"),
            source=tokens(source_property),
            target=tokens(target_property),
            weight=self.random_weight(),
        )

    def random_threshold(self, metric: str) -> float:
        low, high = self._distances.get(metric).threshold_range
        return round(self._rng.uniform(low, high), 4)

    def random_weight(self) -> int:
        return self._rng.randint(1, MAX_RANDOM_WEIGHT)

    def random_transformation_function(self) -> str:
        """A random unary transformation name."""
        return self._rng.choice(self._transforms.unary_names())

    def _random_value_node(self, property_name: str) -> ValueNode:
        node: ValueNode = PropertyNode(property_name)
        if not self._representation.allow_transformations:
            return node
        if self._rng.random() < self._transformation_probability:
            node = TransformationNode(
                function=self.random_transformation_function(), inputs=(node,)
            )
            # Occasionally start with a two-step chain so that chained
            # normalisation (e.g. tokenize over lowerCase) is present
            # in the gene pool from the beginning.
            if self._rng.random() < 0.3:
                node = TransformationNode(
                    function=self.random_transformation_function(), inputs=(node,)
                )
        return node

    def population(self, size: int) -> list[LinkageRule]:
        """An initial population of ``size`` random rules."""
        if size < 1:
            raise ValueError("population size must be >= 1")
        return [self.random_rule() for _ in range(size)]
