"""Specialised crossover operators (Section 5.3, Algorithms 3-7).

GenLink replaces generic subtree crossover with a set of operators that
each evolve *one aspect* of a linkage rule:

* :class:`FunctionCrossover`       — swaps distance / transformation /
                                     aggregation functions,
* :class:`OperatorsCrossover`      — recombines the comparison sets of
                                     two aggregations,
* :class:`AggregationCrossover`    — transplants similarity subtrees,
                                     building hierarchies,
* :class:`TransformationCrossover` — recombines transformation chains,
* :class:`ThresholdCrossover`      — averages comparison thresholds,
* :class:`WeightCrossover`         — averages operator weights.

:class:`SubtreeCrossover` (strongly-typed) is provided as the baseline
for the Table 15 ablation. Every operator receives two parent rules and
returns one offspring derived from the first parent; offspring are
repaired into the active :class:`Representation` so restricted runs
stay inside their representation class. Mutation is *headless chicken*
crossover: the GenLink loop simply passes a freshly generated random
rule as the second parent.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import replace

from repro.core.generation import RandomRuleGenerator
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    RuleNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
    collect_nodes,
    replace_node,
)
from repro.core.representation import Representation
from repro.core.rule import LinkageRule


class CrossoverOperator(ABC):
    """Base class: recombine two rules into one offspring."""

    name: str = "abstract"

    @abstractmethod
    def cross(
        self,
        rule1: LinkageRule,
        rule2: LinkageRule,
        rng: random.Random,
        generator: RandomRuleGenerator,
    ) -> SimilarityNode:
        """Produce an offspring root (may equal rule1's root when the
        operator is inapplicable to the given parents)."""

    def apply(
        self,
        rule1: LinkageRule,
        rule2: LinkageRule,
        rng: random.Random,
        generator: RandomRuleGenerator,
        representation: Representation,
    ) -> LinkageRule:
        """Cross two rules and repair the offspring into the
        representation class."""
        root = self.cross(rule1, rule2, rng, generator)
        root = _dedup_transformation_chains(root)
        root = representation.repair(root, rng)
        return LinkageRule(root)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _choice(items: list, rng: random.Random):
    return items[rng.randrange(len(items))]


class FunctionCrossover(CrossoverOperator):
    """Algorithm 3: interchange one function between the parents.

    Picks a random node type (transformation / comparison /
    aggregation), one node of that type in each parent, and copies the
    second parent's function into the first parent's node. Node types
    absent from either parent are skipped; transformations only
    exchange functions of equal arity so the tree stays well-formed.
    """

    name = "function"

    def cross(self, rule1, rule2, rng, generator):
        node_types = [TransformationNode, ComparisonNode, AggregationNode]
        rng.shuffle(node_types)
        for node_type in node_types:
            nodes1 = collect_nodes(rule1.root, (node_type,))
            nodes2 = collect_nodes(rule2.root, (node_type,))
            if not nodes1 or not nodes2:
                continue
            node1 = _choice(nodes1, rng)
            node2 = _choice(nodes2, rng)
            updated = self._with_function(node1, node2, rng, generator)
            if updated is None:
                continue
            return replace_node(rule1.root, node1, updated)
        return rule1.root

    def _with_function(self, node1, node2, rng, generator):
        if isinstance(node1, ComparisonNode):
            if node1.metric == node2.metric:
                return None
            # Re-sample the threshold within the new measure's range:
            # thresholds are measure-scaled (edits vs metres), so the
            # old value would be meaningless under the new function.
            return replace(
                node1,
                metric=node2.metric,
                threshold=generator.random_threshold(node2.metric),
            )
        if isinstance(node1, AggregationNode):
            if node1.function == node2.function:
                return None
            return replace(node1, function=node2.function)
        assert isinstance(node1, TransformationNode)
        if node1.function == node2.function:
            return None
        if len(node1.inputs) != len(node2.inputs):
            return None
        return replace(node1, function=node2.function, params=node2.params)


class OperatorsCrossover(CrossoverOperator):
    """Algorithm 4: recombine the operator sets of two aggregations.

    Pools the child operators of one aggregation from each parent and
    keeps each pooled operator with probability 50% (at least one is
    always kept). A parent whose root is a bare comparison contributes
    that comparison as a one-element pool.
    """

    name = "operators"

    def cross(self, rule1, rule2, rng, generator):
        agg1 = self._pick_aggregation(rule1, rng)
        pool2 = self._operator_pool(rule2, rng)
        if agg1 is None:
            # rule1 is a bare comparison: recombine it with the second
            # parent's pool under a fresh aggregation.
            pool = [rule1.root] + pool2
            kept = self._keep_subset(pool, rng)
            function = rng.choice(generator.representation.aggregation_functions)
            return AggregationNode(function=function, operators=tuple(kept))
        pool = list(agg1.operators) + pool2
        kept = self._keep_subset(pool, rng)
        return replace_node(rule1.root, agg1, replace(agg1, operators=tuple(kept)))

    def _pick_aggregation(self, rule, rng):
        aggregations = rule.aggregations()
        if not aggregations:
            return None
        return _choice(aggregations, rng)

    def _operator_pool(self, rule, rng):
        aggregation = self._pick_aggregation(rule, rng)
        if aggregation is None:
            return [rule.root]
        return list(aggregation.operators)

    def _keep_subset(self, pool, rng):
        kept = [op for op in pool if rng.random() > 0.5]
        if not kept:
            kept = [_choice(pool, rng)]
        return kept


class AggregationCrossover(CrossoverOperator):
    """Algorithm 5: transplant a similarity subtree from parent 2.

    Selects a random aggregation-or-comparison in each parent and
    replaces the first with the second, allowing hierarchies to grow
    across tree levels (similar to subtree crossover but restricted to
    similarity nodes).
    """

    name = "aggregation"

    def cross(self, rule1, rule2, rng, generator):
        targets = collect_nodes(rule1.root, (AggregationNode, ComparisonNode))
        donors = collect_nodes(rule2.root, (AggregationNode, ComparisonNode))
        target = _choice(targets, rng)
        donor = _choice(donors, rng)
        if target is rule1.root:
            return donor
        return replace_node(rule1.root, target, donor)


class TransformationCrossover(CrossoverOperator):
    """Algorithm 6: recombine transformation chains (two-point).

    Selects an upper and a lower transformation along a chain in each
    parent and replaces the [upper..lower] segment of the first parent
    with the segment from the second, re-attaching the first parent's
    inputs below. When the first parent has no transformations, the
    donor segment is grafted onto one of its properties (this is how
    chains start growing on rules born without transformations);
    duplicated transformations along the new chain are removed.
    """

    name = "transformation"

    def cross(self, rule1, rule2, rng, generator):
        segment = self._pick_segment(rule2, rng)
        if segment is None:
            return rule1.root
        chain1 = self._pick_chain(rule1, rng)
        if chain1 is None or rng.random() < 0.5:
            # Graft the donor segment onto a random value node — on a
            # bare property it introduces a transformation, on an
            # existing transformation it *stacks*, which is how chains
            # longer than the donor's grow at all.
            anchors = rule1.properties() + rule1.transformations()
            anchor = _choice(anchors, rng)
            grafted = _build_segment(segment, (anchor,))
            return replace_node(rule1.root, anchor, grafted)
        upper1, lower1 = chain1
        grafted = _build_segment(segment, lower1.inputs)
        return replace_node(rule1.root, upper1, grafted)

    def _pick_chain(self, rule, rng):
        transformations = rule.transformations()
        if not transformations:
            return None
        upper = _choice(transformations, rng)
        lower = upper
        # Walk a random path of descendant transformations.
        while True:
            children = [
                child
                for child in lower.inputs
                if isinstance(child, TransformationNode)
            ]
            if not children or rng.random() < 0.5:
                break
            lower = _choice(children, rng)
        return upper, lower

    def _pick_segment(self, rule, rng):
        chain = self._pick_chain(rule, rng)
        if chain is None:
            return None
        upper, lower = chain
        # Materialise the function path from upper to lower.
        path = [upper]
        current = upper
        while current is not lower:
            next_node = None
            for child in current.inputs:
                if isinstance(child, TransformationNode) and _contains(child, lower):
                    next_node = child
                    break
            if next_node is None:
                break
            path.append(next_node)
            current = next_node
        return [(node.function, node.params) for node in path]


def _contains(root: RuleNode, node: RuleNode) -> bool:
    if root is node:
        return True
    return any(_contains(child, node) for child in root.children())


def _build_segment(
    segment: list[tuple[str, tuple]], bottom_inputs: tuple[ValueNode, ...]
) -> ValueNode:
    """Stack a chain of unary transformation functions over inputs."""
    node: ValueNode
    function, params = segment[-1]
    node = TransformationNode(function=function, inputs=bottom_inputs, params=params)
    for function, params in reversed(segment[:-1]):
        node = TransformationNode(function=function, inputs=(node,), params=params)
    return node


class ThresholdCrossover(CrossoverOperator):
    """Algorithm 7: average the thresholds of two comparisons.

    Comparisons with the same distance measure are preferred as the
    second endpoint, because thresholds are measure-scaled quantities
    (edit operations vs. metres) and averaging across measures is
    meaningless.
    """

    name = "threshold"

    def cross(self, rule1, rule2, rng, generator):
        comparisons1 = rule1.comparisons()
        comparisons2 = rule2.comparisons()
        if not comparisons1 or not comparisons2:
            return rule1.root
        target = _choice(comparisons1, rng)
        same_metric = [c for c in comparisons2 if c.metric == target.metric]
        if not same_metric:
            # Averaging a character-edit threshold with a metre
            # threshold would produce an out-of-range nonsense value;
            # the operator is simply inapplicable to these parents.
            return rule1.root
        donor = _choice(same_metric, rng)
        new_threshold = 0.5 * (target.threshold + donor.threshold)
        return replace_node(
            rule1.root, target, replace(target, threshold=new_threshold)
        )


class WeightCrossover(CrossoverOperator):
    """Average the weights of two similarity operators (Section 5.3)."""

    name = "weight"

    def cross(self, rule1, rule2, rng, generator):
        nodes1 = collect_nodes(rule1.root, (ComparisonNode, AggregationNode))
        nodes2 = collect_nodes(rule2.root, (ComparisonNode, AggregationNode))
        target = _choice(nodes1, rng)
        donor = _choice(nodes2, rng)
        new_weight = max(1, round(0.5 * (target.weight + donor.weight)))
        if new_weight == target.weight:
            return rule1.root
        return replace_node(rule1.root, target, replace(target, weight=new_weight))


class SubtreeCrossover(CrossoverOperator):
    """Strongly-typed subtree crossover (the Table 15 baseline).

    Picks a random node in parent 1 and replaces it with a random
    *type-compatible* node from parent 2 (similarity nodes exchange
    with similarity nodes, value nodes with value nodes), which is the
    standard crossover for strongly-typed GP.
    """

    name = "subtree"

    def cross(self, rule1, rule2, rng, generator):
        targets = rule1.nodes()
        target = _choice(targets, rng)
        if isinstance(target, (AggregationNode, ComparisonNode)):
            donors = collect_nodes(rule2.root, (AggregationNode, ComparisonNode))
        else:
            donors = collect_nodes(rule2.root, (PropertyNode, TransformationNode))
        if not donors:
            return rule1.root
        donor = _choice(donors, rng)
        if target is rule1.root:
            # Replacing the root with a value node is not type-correct;
            # only similarity donors may take over the root.
            assert isinstance(donor, (AggregationNode, ComparisonNode))
            return donor
        return replace_node(rule1.root, target, donor)


def _dedup_transformation_chains(root: SimilarityNode) -> SimilarityNode:
    """Remove directly nested duplicate transformations.

    Algorithm 6 prescribes that "duplicated transformations are
    removed": a transformation whose input is another transformation
    with the same function and parameters is collapsed into one.
    """

    def visit_value(node: ValueNode) -> ValueNode:
        if isinstance(node, PropertyNode):
            return node
        assert isinstance(node, TransformationNode)
        inputs = tuple(visit_value(child) for child in node.inputs)
        if (
            len(inputs) == 1
            and isinstance(inputs[0], TransformationNode)
            and inputs[0].function == node.function
            and inputs[0].params == node.params
        ):
            return inputs[0]
        if inputs == node.inputs:
            return node
        return replace(node, inputs=inputs)

    def visit_similarity(node: SimilarityNode) -> SimilarityNode:
        if isinstance(node, ComparisonNode):
            source = visit_value(node.source)
            target = visit_value(node.target)
            if source is node.source and target is node.target:
                return node
            return replace(node, source=source, target=target)
        assert isinstance(node, AggregationNode)
        operators = tuple(visit_similarity(child) for child in node.operators)
        if operators == node.operators:
            return node
        return replace(node, operators=operators)

    return visit_similarity(root)


def default_crossover_operators() -> list[CrossoverOperator]:
    """The paper's six specialised operators (Section 5.3)."""
    return [
        FunctionCrossover(),
        OperatorsCrossover(),
        AggregationCrossover(),
        TransformationCrossover(),
        ThresholdCrossover(),
        WeightCrossover(),
    ]
