"""GenLink core: linkage rule model, semantics and the GP learner."""

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    RuleNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
)
from repro.core.rule import LinkageRule
from repro.core.analysis import RuleSummary, rule_summary, simplify_rule
from repro.core.pruning import (
    PruneResult,
    PruneStep,
    prune_rule,
    simplify_transformations,
)
from repro.core.lint import LintFinding, LintReport, lint_rule
from repro.core.diversity import (
    DiversityTracker,
    PopulationSnapshot,
    snapshot_population,
    structural_signature,
)
from repro.core.active import (
    ActiveGenLink,
    ActiveLearningConfig,
    ActiveLearningResult,
    oracle_from_links,
)
from repro.core.evaluation import PairEvaluator, evaluate_rule
from repro.core.fitness import (
    ConfusionCounts,
    FitnessFunction,
    confusion_counts,
    f_measure,
    matthews_correlation,
)
from repro.core.compatible import CompatibleProperty, find_compatible_properties
from repro.core.generation import RandomRuleGenerator
from repro.core.selection import TournamentSelector
from repro.core.crossover import (
    AggregationCrossover,
    CrossoverOperator,
    FunctionCrossover,
    OperatorsCrossover,
    SubtreeCrossover,
    ThresholdCrossover,
    TransformationCrossover,
    WeightCrossover,
    default_crossover_operators,
)
from repro.core.representation import (
    BOOLEAN,
    FULL,
    LINEAR,
    NONLINEAR,
    Representation,
)
from repro.core.genlink import GenLink, GenLinkConfig, IterationRecord, LearningResult
from repro.core.serialization import (
    render_rule,
    rule_from_dict,
    rule_from_json,
    rule_to_dict,
    rule_to_json,
)

__all__ = [
    "AggregationNode",
    "ComparisonNode",
    "PropertyNode",
    "RuleNode",
    "SimilarityNode",
    "TransformationNode",
    "ValueNode",
    "LinkageRule",
    "RuleSummary",
    "rule_summary",
    "simplify_rule",
    "PruneResult",
    "PruneStep",
    "prune_rule",
    "simplify_transformations",
    "LintFinding",
    "LintReport",
    "lint_rule",
    "DiversityTracker",
    "PopulationSnapshot",
    "snapshot_population",
    "structural_signature",
    "ActiveGenLink",
    "ActiveLearningConfig",
    "ActiveLearningResult",
    "oracle_from_links",
    "PairEvaluator",
    "evaluate_rule",
    "ConfusionCounts",
    "FitnessFunction",
    "confusion_counts",
    "f_measure",
    "matthews_correlation",
    "CompatibleProperty",
    "find_compatible_properties",
    "RandomRuleGenerator",
    "TournamentSelector",
    "AggregationCrossover",
    "CrossoverOperator",
    "FunctionCrossover",
    "OperatorsCrossover",
    "SubtreeCrossover",
    "ThresholdCrossover",
    "TransformationCrossover",
    "WeightCrossover",
    "default_crossover_operators",
    "BOOLEAN",
    "FULL",
    "LINEAR",
    "NONLINEAR",
    "Representation",
    "GenLink",
    "GenLinkConfig",
    "IterationRecord",
    "LearningResult",
    "render_rule",
    "rule_from_dict",
    "rule_from_json",
    "rule_to_dict",
    "rule_to_json",
]
