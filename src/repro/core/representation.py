"""Linkage rule representation restrictions (Section 6.3, Table 13).

The paper compares four representations:

* ``boolean``    — threshold-based boolean classifiers: min/max
                   aggregations, no transformations (Definition 10),
* ``linear``     — a single weighted-mean aggregation over comparisons,
                   no transformations, no nesting (Definition 9),
* ``nonlinear``  — arbitrary nested aggregations, no transformations,
* ``full``       — the paper's full expressivity.

A :class:`Representation` both *constrains generation* (which functions
the random rule generator may pick) and *repairs* crossover offspring
that violate the restriction (transformations stripped, hierarchies
flattened, disallowed aggregation functions replaced), so every
individual in a restricted run stays inside the representation class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
)


@dataclass(frozen=True)
class Representation:
    """A restriction on the space of linkage rules."""

    name: str
    aggregation_functions: tuple[str, ...]
    allow_transformations: bool
    allow_nesting: bool

    def __post_init__(self) -> None:
        if not self.aggregation_functions:
            raise ValueError("at least one aggregation function is required")

    # -- repair --------------------------------------------------------------
    def repair(self, root: SimilarityNode, rng: random.Random) -> SimilarityNode:
        """Coerce a similarity tree into this representation."""
        repaired = self._repair_similarity(root, rng)
        if not self.allow_nesting and isinstance(repaired, AggregationNode):
            repaired = replace(repaired, operators=_flatten(repaired))
        return repaired

    def _repair_similarity(
        self, node: SimilarityNode, rng: random.Random
    ) -> SimilarityNode:
        if isinstance(node, ComparisonNode):
            source = self._repair_value(node.source)
            target = self._repair_value(node.target)
            if source is node.source and target is node.target:
                return node
            return replace(node, source=source, target=target)
        assert isinstance(node, AggregationNode)
        function = node.function
        if function not in self.aggregation_functions:
            function = rng.choice(self.aggregation_functions)
        operators = tuple(
            self._repair_similarity(child, rng) for child in node.operators
        )
        if function == node.function and operators == node.operators:
            return node
        return replace(node, function=function, operators=operators)

    def _repair_value(self, node: ValueNode) -> ValueNode:
        if self.allow_transformations or isinstance(node, PropertyNode):
            return node
        assert isinstance(node, TransformationNode)
        return _first_property(node)

    def allows(self, root: SimilarityNode) -> bool:
        """Whether a tree already satisfies this representation."""
        return self._check(root, depth=0)

    def _check(self, node: SimilarityNode, depth: int) -> bool:
        if isinstance(node, ComparisonNode):
            if not self.allow_transformations:
                if not isinstance(node.source, PropertyNode):
                    return False
                if not isinstance(node.target, PropertyNode):
                    return False
            return True
        assert isinstance(node, AggregationNode)
        if node.function not in self.aggregation_functions:
            return False
        if not self.allow_nesting and depth >= 1:
            return False
        return all(self._check(child, depth + 1) for child in node.operators)


def _first_property(node: ValueNode) -> PropertyNode:
    """The left-most property underneath a value tree."""
    while isinstance(node, TransformationNode):
        node = node.inputs[0]
    assert isinstance(node, PropertyNode)
    return node


def _flatten(node: AggregationNode) -> tuple[ComparisonNode, ...]:
    """All comparisons under an aggregation, hierarchy collapsed."""
    comparisons: list[ComparisonNode] = []

    def visit(current: SimilarityNode) -> None:
        if isinstance(current, ComparisonNode):
            comparisons.append(current)
        else:
            for child in current.operators:
                visit(child)

    visit(node)
    return tuple(comparisons)


#: Threshold-based boolean classifiers (Definition 10).
BOOLEAN = Representation(
    name="boolean",
    aggregation_functions=("min", "max"),
    allow_transformations=False,
    allow_nesting=True,
)

#: Linear classifiers (Definition 9).
LINEAR = Representation(
    name="linear",
    aggregation_functions=("wmean",),
    allow_transformations=False,
    allow_nesting=False,
)

#: Non-linear classifiers without transformations.
NONLINEAR = Representation(
    name="nonlinear",
    aggregation_functions=("min", "max", "wmean"),
    allow_transformations=False,
    allow_nesting=True,
)

#: The paper's full expressivity.
FULL = Representation(
    name="full",
    aggregation_functions=("min", "max", "wmean"),
    allow_transformations=True,
    allow_nesting=True,
)

REPRESENTATIONS: dict[str, Representation] = {
    r.name: r for r in (BOOLEAN, LINEAR, NONLINEAR, FULL)
}


def get_representation(name: str) -> Representation:
    """Look up a representation class by name (Table 13 labels)."""
    try:
        return REPRESENTATIONS[name]
    except KeyError:
        known = ", ".join(sorted(REPRESENTATIONS))
        raise KeyError(f"unknown representation {name!r}; known: {known}")
