"""The :class:`LinkageRule` wrapper and grammar validation.

A linkage rule (Definition 3) assigns a similarity in [0, 1] to each
entity pair; the matching set is everything scoring >= 0.5. The wrapper
carries the root similarity node and enforces the strongly-typed
grammar of Figure 1:

* the root is an aggregation or comparison,
* aggregations contain aggregations and/or comparisons,
* comparisons contain exactly two value operators,
* transformations contain value operators only,
* properties are leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    RuleNode,
    SimilarityNode,
    TransformationNode,
    collect_nodes,
    iter_nodes,
)

#: Classification threshold of Definition 3.
MATCH_THRESHOLD = 0.5


class RuleValidationError(ValueError):
    """Raised when a tree violates the linkage rule grammar."""


def validate_tree(node: RuleNode, expect_similarity: bool = True) -> None:
    """Recursively check the Figure 1 grammar; raise on violation."""
    if isinstance(node, AggregationNode):
        if not expect_similarity:
            raise RuleValidationError("aggregation nested inside a value operator")
        for child in node.operators:
            if not isinstance(child, (AggregationNode, ComparisonNode)):
                raise RuleValidationError(
                    f"aggregation child must be a similarity operator, got "
                    f"{type(child).__name__}"
                )
            validate_tree(child, expect_similarity=True)
    elif isinstance(node, ComparisonNode):
        if not expect_similarity:
            raise RuleValidationError("comparison nested inside a value operator")
        for child in (node.source, node.target):
            if not isinstance(child, (PropertyNode, TransformationNode)):
                raise RuleValidationError(
                    f"comparison child must be a value operator, got "
                    f"{type(child).__name__}"
                )
            validate_tree(child, expect_similarity=False)
    elif isinstance(node, TransformationNode):
        if expect_similarity:
            raise RuleValidationError("transformation cannot appear as similarity")
        for child in node.inputs:
            if not isinstance(child, (PropertyNode, TransformationNode)):
                raise RuleValidationError(
                    f"transformation input must be a value operator, got "
                    f"{type(child).__name__}"
                )
            validate_tree(child, expect_similarity=False)
    elif isinstance(node, PropertyNode):
        if expect_similarity:
            raise RuleValidationError("property cannot appear as similarity")
    else:
        raise RuleValidationError(f"unknown node type {type(node).__name__}")


@dataclass(frozen=True)
class LinkageRule:
    """An immutable linkage rule around a similarity root node."""

    root: SimilarityNode

    def __post_init__(self) -> None:
        validate_tree(self.root, expect_similarity=True)

    # -- structure ----------------------------------------------------------
    def operator_count(self) -> int:
        """Number of operators, the basis of the parsimony penalty."""
        return self.root.operator_count()

    def comparisons(self) -> list[ComparisonNode]:
        return collect_nodes(self.root, (ComparisonNode,))  # type: ignore[return-value]

    def aggregations(self) -> list[AggregationNode]:
        return collect_nodes(self.root, (AggregationNode,))  # type: ignore[return-value]

    def transformations(self) -> list[TransformationNode]:
        return collect_nodes(self.root, (TransformationNode,))  # type: ignore[return-value]

    def properties(self) -> list[PropertyNode]:
        return collect_nodes(self.root, (PropertyNode,))  # type: ignore[return-value]

    def nodes(self) -> list[RuleNode]:
        return list(iter_nodes(self.root))

    def depth(self) -> int:
        def node_depth(node: RuleNode) -> int:
            children = node.children()
            if not children:
                return 1
            return 1 + max(node_depth(child) for child in children)

        return node_depth(self.root)

    def with_root(self, root: SimilarityNode) -> "LinkageRule":
        return LinkageRule(root)

    def __str__(self) -> str:
        return str(self.root)
