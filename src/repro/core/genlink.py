"""The GenLink learning algorithm (Algorithm 1, Section 5).

The learner starts from a population of random linkage rules (seeded
with compatible property pairs, Section 5.1) and evolves it with
tournament selection over the MCC-with-parsimony fitness and the
specialised crossover operators of Section 5.3. Mutation is headless
chicken crossover: with the configured probability the second parent is
replaced by a freshly generated random rule. Learning stops after a
fixed number of iterations or as soon as one rule reaches the full
training F-measure (Table 4).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.compatible import find_compatible_properties
from repro.core.crossover import CrossoverOperator, default_crossover_operators
from repro.core.evaluation import PairEvaluator
from repro.core.fitness import FitnessFunction
from repro.core.generation import RandomRuleGenerator
from repro.core.representation import FULL, Representation
from repro.core.rule import LinkageRule
from repro.core.selection import TournamentSelector
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource
from repro.distances.registry import DistanceRegistry
from repro.distances.registry import default_registry as default_distances
from repro.engine.session import EngineSession
from repro.transforms.registry import TransformationRegistry
from repro.transforms.registry import default_registry as default_transforms

#: Callback invoked after each recorded iteration with the iteration
#: number and the current population.
PopulationObserver = Callable[[int, list[LinkageRule]], None]


@dataclass
class GenLinkConfig:
    """Learner parameters; defaults follow Table 4 of the paper."""

    population_size: int = 500
    max_iterations: int = 50
    tournament_size: int = 5
    mutation_probability: float = 0.25
    stop_f_measure: float = 1.0
    parsimony_weight: float = 0.005
    parsimony_mode: str = "similarity"
    representation: Representation = FULL
    #: Seed the initial population with compatible property pairs
    #: (Algorithm 2). Disabled for the Table 14 "random" baseline.
    seeding: bool = True
    #: Links analysed by the compatible-property search.
    max_seeding_links: int = 100
    #: Probability of appending a transformation to a property (§5.1).
    transformation_probability: float = 0.5
    #: Probability that a seeded comparison explores a random measure
    #: from the catalogue (see repro.core.generation).
    measure_exploration: float = 0.25
    #: Offspring larger than this are replaced by their first parent;
    #: a safety net on top of the parsimony pressure.
    max_operator_count: int = 100
    #: Number of best-by-fitness rules copied into the next generation.
    #: Algorithm 1 refills the population entirely from crossover; one
    #: elite keeps best-so-far curves monotone, as in the paper's tables.
    elitism: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.max_iterations < 0:
            raise ValueError("max_iterations must be >= 0")
        if not 0.0 <= self.mutation_probability <= 1.0:
            raise ValueError("mutation_probability must be in [0, 1]")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise ValueError("elitism must be in [0, population_size)")


@dataclass(frozen=True)
class IterationRecord:
    """Learning progress after one iteration (cf. Tables 7-12)."""

    iteration: int
    seconds: float
    train_f_measure: float
    train_mcc: float
    best_fitness: float
    operator_count: int
    comparison_count: int
    transformation_count: int
    validation_f_measure: float | None = None


@dataclass
class LearningResult:
    """Outcome of a GenLink run."""

    best_rule: LinkageRule
    history: list[IterationRecord] = field(default_factory=list)
    stopped_early: bool = False
    #: The final population, best fitness first (used by the active
    #: learning extension as a query-by-committee committee).
    final_population: list[LinkageRule] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return self.history[-1].iteration if self.history else 0

    def record_at(self, iteration: int) -> IterationRecord:
        """The record at an iteration (clamped to the last one reached,
        which is how the paper reports early-stopped runs)."""
        for record in self.history:
            if record.iteration == iteration:
                return record
        if self.history and iteration > self.history[-1].iteration:
            return self.history[-1]
        raise KeyError(f"no record for iteration {iteration}")


class GenLink:
    """The GenLink genetic programming learner (Algorithm 1)."""

    def __init__(
        self,
        config: GenLinkConfig | None = None,
        crossover_operators: Sequence[CrossoverOperator] | None = None,
        distances: DistanceRegistry | None = None,
        transforms: TransformationRegistry | None = None,
        workers: "int | str | None" = None,
        cache_dir: "str | None" = None,
    ):
        """``workers`` selects the engine executor used for
        population-level fitness evaluation (``None`` consults the
        ``REPRO_ENGINE_WORKERS`` environment variable; 0 = serial).
        Use thread workers here: fitness evaluation parallelises by
        fanning independent distance columns out over shared caches,
        which a ``process:N`` executor cannot share — process specs run
        the learning path serially (they accelerate
        :class:`repro.matching.engine.MatchingEngine` sharding
        instead). Learning results are byte-identical for every
        setting — the GP itself is sequential.

        ``cache_dir`` enables the engine's persistent distance-column
        store for the learning session (``None`` consults
        ``REPRO_ENGINE_CACHE``; ``""`` forces it off): repeated
        learning runs over the same reference links skip the distance
        pass for every comparison op already persisted. Also
        result-invisible — only cold-start cost changes."""
        self.config = config if config is not None else GenLinkConfig()
        self._operators = (
            list(crossover_operators)
            if crossover_operators is not None
            else default_crossover_operators()
        )
        if not self._operators:
            raise ValueError("need at least one crossover operator")
        self._distances = distances if distances is not None else default_distances()
        self._transforms = (
            transforms if transforms is not None else default_transforms()
        )
        self._workers = workers
        self._cache_dir = cache_dir

    # -- public API -----------------------------------------------------------
    def learn(
        self,
        source_a: DataSource,
        source_b: DataSource,
        train_links: ReferenceLinkSet,
        validation_links: ReferenceLinkSet | None = None,
        rng: random.Random | int | None = None,
        observer: "PopulationObserver | None" = None,
    ) -> LearningResult:
        """Learn a linkage rule from reference links (Definition 4).

        ``observer``, when given, is called after every recorded
        iteration with ``(iteration, population)`` — e.g. a
        :class:`repro.core.diversity.DiversityTracker` collecting
        convergence diagnostics.
        """
        # One engine session backs both evaluators: entities shared
        # between the train and validation pair lists transform once,
        # and a single executor (``workers``) owns the parallel fan-out
        # of each generation's distance columns.
        session = EngineSession(
            distances=self._distances,
            transforms=self._transforms,
            executor=self._workers,
            store=self._cache_dir,
        )
        try:
            return self._learn(
                session, source_a, source_b, train_links, validation_links,
                rng, observer,
            )
        finally:
            session.close()

    def _learn(
        self,
        session: EngineSession,
        source_a: DataSource,
        source_b: DataSource,
        train_links: ReferenceLinkSet,
        validation_links: ReferenceLinkSet | None,
        rng: random.Random | int | None,
        observer: "PopulationObserver | None",
    ) -> LearningResult:
        rng = _resolve_rng(rng)
        config = self.config
        start = time.perf_counter()

        train_pairs, train_labels = train_links.labelled_pairs(source_a, source_b)
        if not any(train_labels) or all(train_labels):
            raise ValueError(
                "training links must contain both positive and negative links"
            )
        evaluator = PairEvaluator(train_pairs, session=session)
        fitness_fn = FitnessFunction(
            evaluator,
            train_labels,
            parsimony_weight=config.parsimony_weight,
            parsimony_mode=config.parsimony_mode,
        )
        validation_fn: FitnessFunction | None = None
        if validation_links is not None:
            validation_pairs, validation_labels = validation_links.labelled_pairs(
                source_a, source_b
            )
            validation_fn = FitnessFunction(
                PairEvaluator(validation_pairs, session=session),
                validation_labels,
            )

        generator = self.build_generator(source_a, source_b, train_links, rng)
        population = generator.population(config.population_size)
        # Population-level evaluation: one compiled plan per generation
        # computes every unique comparison exactly once; the per-rule
        # stats() calls below then reduce over cached score vectors.
        fitness_fn.prime_population(population)

        stats_cache: dict = {}

        def stats(rule: LinkageRule) -> tuple[float, float, float]:
            """(fitness, train F1, train MCC), cached per root node."""
            cached = stats_cache.get(rule.root)
            if cached is None:
                confusion = fitness_fn.confusion(rule)
                mcc = confusion.mcc()
                fitness = (
                    mcc
                    - config.parsimony_weight * fitness_fn.operator_count(rule)
                )
                cached = (fitness, confusion.f_measure(), mcc)
                stats_cache[rule.root] = cached
            return cached

        selector = TournamentSelector(config.tournament_size)
        history: list[IterationRecord] = []
        result = LearningResult(best_rule=population[0])
        best_so_far: LinkageRule | None = None

        def record(iteration: int) -> IterationRecord:
            # History reports the best rule seen so far (by training F1,
            # ties broken by fitness). Selection pressure alone does not
            # guarantee the F1-best rule survives — elitism keeps the
            # fitness-best — so the learner remembers it explicitly,
            # which is also what it must return (Algorithm 1: "return
            # best linkage rule").
            nonlocal best_so_far
            generation_best = max(
                population, key=lambda r: (stats(r)[1], stats(r)[0])
            )
            if best_so_far is None or (
                (stats(generation_best)[1], stats(generation_best)[0])
                > (stats(best_so_far)[1], stats(best_so_far)[0])
            ):
                best_so_far = generation_best
            best = best_so_far
            fitness, f1, mcc = stats(best)
            validation_f1 = (
                validation_fn.f_measure(best) if validation_fn is not None else None
            )
            entry = IterationRecord(
                iteration=iteration,
                seconds=time.perf_counter() - start,
                train_f_measure=f1,
                train_mcc=mcc,
                best_fitness=fitness,
                operator_count=best.operator_count(),
                comparison_count=len(best.comparisons()),
                transformation_count=len(best.transformations()),
                validation_f_measure=validation_f1,
            )
            history.append(entry)
            result.best_rule = best
            return entry

        entry = record(0)
        if observer is not None:
            observer(0, population)
        for iteration in range(1, config.max_iterations + 1):
            if entry.train_f_measure >= config.stop_f_measure:
                result.stopped_early = True
                break
            population = self._next_generation(
                population, stats, selector, generator, rng
            )
            fitness_fn.prime_population(population)
            entry = record(iteration)
            if observer is not None:
                observer(iteration, population)
        result.history = history
        result.final_population = sorted(
            population, key=lambda r: stats(r)[0], reverse=True
        )
        return result

    def build_generator(
        self,
        source_a: DataSource,
        source_b: DataSource,
        train_links: ReferenceLinkSet,
        rng: random.Random,
    ) -> RandomRuleGenerator:
        """The random rule generator for a learning task (Section 5.1)."""
        config = self.config
        compatible = []
        if config.seeding:
            compatible = find_compatible_properties(
                source_a,
                source_b,
                train_links.positive,
                max_links=config.max_seeding_links,
                rng=rng,
            )
        return RandomRuleGenerator(
            compatible,
            rng,
            representation=config.representation,
            distances=self._distances,
            transforms=self._transforms,
            source_properties=source_a.property_names(),
            target_properties=source_b.property_names(),
            transformation_probability=config.transformation_probability,
            measure_exploration=config.measure_exploration,
        )

    # -- internals --------------------------------------------------------------
    def _next_generation(
        self,
        population: list[LinkageRule],
        stats,
        selector: TournamentSelector,
        generator: RandomRuleGenerator,
        rng: random.Random,
    ) -> list[LinkageRule]:
        config = self.config
        fitness = lambda rule: stats(rule)[0]
        next_population: list[LinkageRule] = []
        if config.elitism:
            elite = sorted(population, key=fitness, reverse=True)[: config.elitism]
            next_population.extend(elite)
        while len(next_population) < config.population_size:
            rule1 = selector.select(population, fitness, rng)
            operator = self._operators[rng.randrange(len(self._operators))]
            if rng.random() < config.mutation_probability:
                rule2 = generator.random_rule()
            else:
                rule2 = selector.select(population, fitness, rng)
            child = operator.apply(
                rule1, rule2, rng, generator, config.representation
            )
            if child.operator_count() > config.max_operator_count:
                child = rule1
            next_population.append(child)
        return next_population


def _resolve_rng(rng: random.Random | int | None) -> random.Random:
    if rng is None:
        return random.Random()
    if isinstance(rng, int):
        return random.Random(rng)
    return rng
