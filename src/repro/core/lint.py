"""Linkage rule linting: catch mistakes in hand-edited rules.

The paper's selling point for tree-shaped rules is that they "can be
understood and further improved by humans" (Section 1) — and humans
editing exported rules make mechanical mistakes: referencing properties
the data sources do not have, thresholds far outside a measure's
sensible range, aggregation branches that can never influence the
score. :func:`lint_rule` checks a rule (optionally against the two data
sources it will run on) and returns structured findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
    iter_nodes,
)
from repro.core.rule import LinkageRule
from repro.data.source import DataSource
from repro.distances.registry import DistanceRegistry
from repro.distances.registry import default_registry as default_distances
from repro.transforms.registry import TransformationRegistry
from repro.transforms.registry import default_registry as default_transforms

#: Finding severities, ordered.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class LintFinding:
    """One issue found in a rule."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass(frozen=True)
class LintReport:
    """All findings for one rule."""

    findings: tuple[LintFinding, ...]

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "warning")

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings are acceptable)."""
        return not self.errors

    def render(self) -> str:
        if not self.findings:
            return "no findings"
        return "\n".join(str(finding) for finding in self.findings)


def _value_properties(node: ValueNode) -> list[str]:
    return [
        n.property_name for n in iter_nodes(node) if isinstance(n, PropertyNode)
    ]


def lint_rule(
    rule: LinkageRule,
    source_a: DataSource | None = None,
    source_b: DataSource | None = None,
    distances: DistanceRegistry | None = None,
    transforms: TransformationRegistry | None = None,
) -> LintReport:
    """Check a rule for mistakes; sources enable property checks.

    Errors (the rule cannot work as written):

    * ``unknown-measure`` / ``unknown-transformation`` — names not in
      the registries,
    * ``unknown-property`` — a property absent from the corresponding
      data source's schema,
    * ``bad-arity`` — a transformation applied to the wrong number of
      inputs.

    Warnings (the rule works but likely not as intended):

    * ``threshold-out-of-range`` — far outside the measure's sensible
      range (e.g. Levenshtein threshold 5000),
    * ``zero-threshold`` — exact matching where the measure is
      continuous (geographic/numeric),
    * ``duplicate-comparison`` — structurally identical siblings,
    * ``constant-wmean-weight`` — weights all equal inside a wmean
      (they change nothing; usually a forgotten edit).
    """
    distances = distances if distances is not None else default_distances()
    transforms = transforms if transforms is not None else default_transforms()
    findings: list[LintFinding] = []

    def add(severity: str, code: str, message: str) -> None:
        findings.append(LintFinding(severity, code, message))

    properties_a = set(source_a.property_names()) if source_a is not None else None
    properties_b = set(source_b.property_names()) if source_b is not None else None

    def check_value(node: ValueNode, side: str, known: set[str] | None) -> None:
        for sub in iter_nodes(node):
            if isinstance(sub, PropertyNode):
                if known is not None and sub.property_name not in known:
                    add(
                        "error",
                        "unknown-property",
                        f"{side} property {sub.property_name!r} does not "
                        f"exist in the data source",
                    )
            elif isinstance(sub, TransformationNode):
                if sub.function not in transforms:
                    add(
                        "error",
                        "unknown-transformation",
                        f"transformation {sub.function!r} is not registered",
                    )
                else:
                    expected = transforms.get(sub.function).arity
                    if len(sub.inputs) != expected:
                        add(
                            "error",
                            "bad-arity",
                            f"{sub.function} expects {expected} input(s), "
                            f"got {len(sub.inputs)}",
                        )

    def check_similarity(node: SimilarityNode) -> None:
        if isinstance(node, ComparisonNode):
            if node.metric not in distances:
                add(
                    "error",
                    "unknown-measure",
                    f"distance measure {node.metric!r} is not registered",
                )
            else:
                measure = distances.get(node.metric)
                low, high = measure.threshold_range
                span = max(high - low, 1e-9)
                if node.threshold > high + 10 * span:
                    add(
                        "warning",
                        "threshold-out-of-range",
                        f"{node.metric} threshold {node.threshold:g} is far "
                        f"above the usual range ({low:g}..{high:g})",
                    )
                if node.threshold == 0.0 and node.metric in (
                    "geographic",
                    "numeric",
                    "relativeNumeric",
                ):
                    add(
                        "warning",
                        "zero-threshold",
                        f"{node.metric} with threshold 0 requires exact "
                        f"equality of a continuous quantity",
                    )
            check_value(node.source, "source", properties_a)
            check_value(node.target, "target", properties_b)
            return
        assert isinstance(node, AggregationNode)
        normalized = [
            (
                child.__class__.__name__,
                str(child),
            )
            for child in node.operators
        ]
        seen: set = set()
        for key in normalized:
            if key in seen:
                add(
                    "warning",
                    "duplicate-comparison",
                    f"aggregation {node.function} holds structurally "
                    f"identical children: {key[1][:60]}",
                )
                break
            seen.add(key)
        if (
            node.function == "wmean"
            and len(node.operators) > 1
            and len({child.weight for child in node.operators}) == 1
            and node.operators[0].weight != 1
        ):
            add(
                "warning",
                "constant-wmean-weight",
                f"all wmean children share weight "
                f"{node.operators[0].weight}; equal weights have no effect",
            )
        for child in node.operators:
            check_similarity(child)

    check_similarity(rule.root)
    return LintReport(findings=tuple(findings))
