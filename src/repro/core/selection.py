"""Tournament selection (Section 5.2, Table 4: tournament size 5)."""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.core.rule import LinkageRule


class TournamentSelector:
    """Selects rules by running fitness tournaments with replacement."""

    def __init__(self, tournament_size: int = 5):
        if tournament_size < 1:
            raise ValueError("tournament size must be >= 1")
        self._tournament_size = tournament_size

    @property
    def tournament_size(self) -> int:
        return self._tournament_size

    def select(
        self,
        population: Sequence[LinkageRule],
        fitness: Callable[[LinkageRule], float],
        rng: random.Random,
    ) -> LinkageRule:
        """Pick the fittest of ``tournament_size`` random contestants."""
        if not population:
            raise ValueError("cannot select from an empty population")
        best: LinkageRule | None = None
        best_fitness = float("-inf")
        for _ in range(self._tournament_size):
            contestant = population[rng.randrange(len(population))]
            contestant_fitness = fitness(contestant)
            if contestant_fitness > best_fitness:
                best = contestant
                best_fitness = contestant_fitness
        assert best is not None
        return best

    def select_pair(
        self,
        population: Sequence[LinkageRule],
        fitness: Callable[[LinkageRule], float],
        rng: random.Random,
    ) -> tuple[LinkageRule, LinkageRule]:
        """Two independent tournament winners (may coincide)."""
        return (
            self.select(population, fitness, rng),
            self.select(population, fitness, rng),
        )
