"""Fitness-guided pruning of learned linkage rules.

:mod:`repro.core.analysis` removes redundancy that is provably
semantics-free (duplicate children, single-child aggregations). This
module goes further in two steps:

* :func:`simplify_transformations` collapses transformation chains that
  are equivalent on the value level — nested applications of idempotent
  functions (``lowerCase(lowerCase(x))``) and, optionally, case
  transformations absorbed by an outer case transformation
  (``lowerCase(upperCase(x)) -> lowerCase(x)``, exact for ASCII data,
  which is what all shipped datasets produce).

* :func:`prune_rule` performs *empirical* pruning: it greedily removes
  similarity subtrees and strips transformation layers as long as the
  rule's MCC on a labelled pair set does not degrade (beyond a
  configurable tolerance). This mirrors the paper's parsimony goal —
  Section 6.2 highlights that learned DBpediaDrugBank rules use 5.6
  comparisons against 13 in the human rule — and yields rules a human
  can audit.

Empirical pruning can change behaviour on pairs *outside* the provided
reference links; the returned :class:`PruneResult` records every edit
so the trade-off stays visible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.analysis import simplify_rule
from repro.core.evaluation import PairEvaluator
from repro.core.fitness import confusion_counts
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    RuleNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
    collect_nodes,
    replace_node,
)
from repro.core.rule import LinkageRule

#: Transformations with ``f(f(x)) == f(x)`` for every value set. ``stem``
#: and parameterised ``replace`` are excluded: Porter stemming is not
#: guaranteed idempotent and ``replace`` may reintroduce its own search
#: string.
IDEMPOTENT_TRANSFORMATIONS = frozenset(
    {
        "lowerCase",
        "upperCase",
        "capitalize",
        "trim",
        "tokenize",
        "stripPunctuation",
        "normalizeWhitespace",
        "alphaReduce",
        "numReduce",
        "stripUriPrefix",
    }
)

#: Case transformations: an outer one makes a directly nested inner one
#: irrelevant (exact for ASCII; e.g. German sharp-s breaks this, which
#: is why absorption is a flag on :func:`simplify_transformations`).
CASE_TRANSFORMATIONS = frozenset({"lowerCase", "upperCase", "capitalize"})

#: The subset safe to absorb as the *inner* layer: pure per-character
#: case mappings. ``capitalize`` is excluded here because it also
#: normalises whitespace (word-joins with single spaces), an effect an
#: outer case transformation does not reproduce.
_PURE_CASE_TRANSFORMATIONS = frozenset({"lowerCase", "upperCase"})


def _simplify_value(node: ValueNode, absorb_case: bool) -> ValueNode:
    if isinstance(node, PropertyNode):
        return node
    assert isinstance(node, TransformationNode)
    inputs = tuple(_simplify_value(child, absorb_case) for child in node.inputs)

    if len(inputs) == 1:
        child = inputs[0]
        if isinstance(child, TransformationNode) and len(child.inputs) == 1:
            same_idempotent = (
                node.function == child.function
                and node.params == child.params
                and node.function in IDEMPOTENT_TRANSFORMATIONS
            )
            case_absorbed = (
                absorb_case
                and node.function in CASE_TRANSFORMATIONS
                and child.function in _PURE_CASE_TRANSFORMATIONS
            )
            if same_idempotent or case_absorbed:
                # Skip the inner layer entirely: f(g(x)) -> f(x).
                return _simplify_value(
                    replace(node, inputs=child.inputs), absorb_case
                )

    if inputs == node.inputs:
        return node
    return replace(node, inputs=inputs)


def _simplify_similarity_values(
    node: SimilarityNode, absorb_case: bool
) -> SimilarityNode:
    if isinstance(node, ComparisonNode):
        return replace(
            node,
            source=_simplify_value(node.source, absorb_case),
            target=_simplify_value(node.target, absorb_case),
        )
    assert isinstance(node, AggregationNode)
    return replace(
        node,
        operators=tuple(
            _simplify_similarity_values(child, absorb_case)
            for child in node.operators
        ),
    )


def simplify_transformations(
    rule: LinkageRule, absorb_case: bool = True
) -> LinkageRule:
    """Collapse redundant transformation layers inside a rule.

    With ``absorb_case=False`` only exact rewrites are applied (nested
    idempotent functions); with the default ``absorb_case=True`` a case
    transformation also absorbs a directly nested case transformation,
    which is exact for ASCII values.
    """
    return LinkageRule(_simplify_similarity_values(rule.root, absorb_case))


@dataclass(frozen=True)
class PruneStep:
    """One accepted pruning edit."""

    action: str
    description: str
    operators_before: int
    operators_after: int
    mcc: float

    def __str__(self) -> str:
        return (
            f"{self.action}: {self.description} "
            f"({self.operators_before} -> {self.operators_after} operators, "
            f"mcc {self.mcc:.3f})"
        )


@dataclass(frozen=True)
class PruneResult:
    """Outcome of :func:`prune_rule`."""

    rule: LinkageRule
    steps: tuple[PruneStep, ...]
    mcc_before: float
    mcc_after: float

    @property
    def edits(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        lines = [
            f"pruned {self.edits} edit(s), "
            f"mcc {self.mcc_before:.3f} -> {self.mcc_after:.3f}"
        ]
        lines.extend(f"  {step}" for step in self.steps)
        return "\n".join(lines)


def _candidate_edits(
    rule: LinkageRule,
) -> list[tuple[str, str, LinkageRule]]:
    """All single-edit shrink candidates of a rule.

    Two edit families: dropping one child from an aggregation (keeping
    at least one) and replacing a transformation node by one of its
    inputs (stripping a layer). Each candidate is one edit away from
    ``rule`` so greedy search stays quadratic, not exponential.
    """
    candidates: list[tuple[str, str, LinkageRule]] = []
    root = rule.root

    for aggregation in collect_nodes(root, (AggregationNode,)):
        assert isinstance(aggregation, AggregationNode)
        if len(aggregation.operators) < 2:
            continue
        for index, child in enumerate(aggregation.operators):
            remaining = (
                aggregation.operators[:index] + aggregation.operators[index + 1 :]
            )
            new_aggregation = replace(aggregation, operators=remaining)
            new_root = replace_node(root, aggregation, new_aggregation)
            candidates.append(
                (
                    "drop-operator",
                    f"remove child {index} ({_brief(child)}) from "
                    f"{aggregation.function} aggregation",
                    LinkageRule(new_root),  # type: ignore[arg-type]
                )
            )

    for transformation in collect_nodes(root, (TransformationNode,)):
        assert isinstance(transformation, TransformationNode)
        for index, child in enumerate(transformation.inputs):
            new_root = replace_node(root, transformation, child)
            candidates.append(
                (
                    "strip-transformation",
                    f"replace {transformation.function} by its input "
                    f"{index} ({_brief(child)})",
                    LinkageRule(new_root),  # type: ignore[arg-type]
                )
            )

    return candidates


def _brief(node: RuleNode, limit: int = 48) -> str:
    text = str(node)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def prune_rule(
    rule: LinkageRule,
    evaluator: PairEvaluator,
    labels: Sequence[bool],
    tolerance: float = 0.0,
    max_edits: int = 64,
    absorb_case: bool = True,
) -> PruneResult:
    """Greedily shrink ``rule`` without degrading MCC on labelled pairs.

    Per round, every single-edit shrink candidate is scored on the
    evaluator's pair set; the smallest-resulting candidate among those
    with the best MCC is accepted if its MCC is within ``tolerance`` of
    the incumbent. Exact simplification (:func:`simplify_rule` and
    :func:`simplify_transformations`) runs before the search and after
    every accepted edit. The evaluator's comparison cache makes the
    candidate sweep cheap — candidates share almost all their subtrees.
    """
    label_array = np.asarray(labels, dtype=bool)
    if len(label_array) != len(evaluator):
        raise ValueError(
            f"label count {len(label_array)} != pair count {len(evaluator)}"
        )

    def mcc_of(candidate: LinkageRule) -> float:
        predictions = evaluator.predictions(candidate.root)
        return confusion_counts(predictions, label_array).mcc()

    current = simplify_transformations(simplify_rule(rule), absorb_case)
    mcc_before = mcc_of(rule)
    current_mcc = mcc_of(current)
    steps: list[PruneStep] = []

    while len(steps) < max_edits:
        best: tuple[float, int, str, str, LinkageRule] | None = None
        for action, description, candidate in _candidate_edits(current):
            candidate_mcc = mcc_of(candidate)
            if candidate_mcc < current_mcc - tolerance:
                continue
            key = (candidate_mcc, -candidate.operator_count())
            if best is None or key > (best[0], -best[1]):
                best = (
                    candidate_mcc,
                    candidate.operator_count(),
                    action,
                    description,
                    candidate,
                )
        if best is None:
            break
        candidate_mcc, __, action, description, candidate = best
        operators_before = current.operator_count()
        current = simplify_transformations(simplify_rule(candidate), absorb_case)
        current_mcc = mcc_of(current)
        steps.append(
            PruneStep(
                action=action,
                description=description,
                operators_before=operators_before,
                operators_after=current.operator_count(),
                mcc=current_mcc,
            )
        )

    return PruneResult(
        rule=current,
        steps=tuple(steps),
        mcc_before=mcc_before,
        mcc_after=current_mcc,
    )
