"""Linkage rule semantics (Definitions 5-8) and batch evaluation.

:class:`PairEvaluator` evaluates similarity nodes over a *fixed* list of
entity pairs and returns numpy score vectors. Two memoisation layers
make GP fitness evaluation tractable in pure Python:

* value subtrees are cached per (subtree, entity) — transformations of
  an entity's values do not depend on the pair it appears in;
* comparison subtrees are cached per evaluator — populations evolved by
  crossover share most of their genetic material, so the same
  comparison subtree is typically evaluated by many rules per
  generation.

Semantics notes:

* Comparison (Definition 7): ``1 - d/theta`` when ``d <= theta``, else
  0. The degenerate ``theta = 0`` means exact matching: similarity 1
  when the distance is 0, else 0.
* Comparisons where either side produces no values yield similarity 0
  (the paper leaves this case open; Silk treats absent values as
  non-matching, and the drug datasets rely on this for their partially
  missing identifiers).
* Aggregation (Definition 8): ``min`` / ``max`` ignore weights,
  ``wmean`` uses the integer weights attached to its child operators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
)
from repro.data.entity import Entity
from repro.distances.base import INFINITE_DISTANCE
from repro.distances.registry import DistanceRegistry
from repro.distances.registry import default_registry as default_distances
from repro.transforms.base import Transformation
from repro.transforms.registry import TransformationRegistry
from repro.transforms.registry import default_registry as default_transforms

#: Aggregation function names accepted by :class:`AggregationNode`.
AGGREGATION_FUNCTIONS = ("min", "max", "wmean")


def evaluate_value(
    node: ValueNode,
    entity: Entity,
    transforms: TransformationRegistry,
) -> tuple[str, ...]:
    """Evaluate a value operator for one entity (Definitions 5 & 6)."""
    if isinstance(node, PropertyNode):
        return entity.values(node.property_name)
    if isinstance(node, TransformationNode):
        transformation = _resolve_transformation(node, transforms)
        inputs = [evaluate_value(child, entity, transforms) for child in node.inputs]
        return transformation(inputs)
    raise TypeError(f"not a value operator: {type(node).__name__}")


def _resolve_transformation(
    node: TransformationNode, transforms: TransformationRegistry
) -> Transformation:
    base = transforms.get(node.function)
    if not node.params:
        return base
    # Parameterised transformations are instantiated on the fly so the
    # node stays a pure description. Only `replace` takes parameters in
    # the built-in set.
    params = dict(node.params)
    if node.function == "replace":
        from repro.transforms.normalize import Replace

        return Replace(
            search=params.get("search", "-"),
            replacement=params.get("replacement", " "),
        )
    return base


def compare_value_sets(
    metric_name: str,
    threshold: float,
    values_a: Sequence[str],
    values_b: Sequence[str],
    distances: DistanceRegistry,
) -> float:
    """Similarity of two value sets under a comparison's measure."""
    if not values_a or not values_b:
        return 0.0
    distance = distances.get(metric_name).evaluate(values_a, values_b)
    if distance >= INFINITE_DISTANCE:
        return 0.0
    if threshold <= 0.0:
        return 1.0 if distance == 0.0 else 0.0
    if distance > threshold:
        return 0.0
    return 1.0 - distance / threshold


class PairEvaluator:
    """Evaluates similarity nodes over a fixed list of entity pairs."""

    def __init__(
        self,
        pairs: Sequence[tuple[Entity, Entity]],
        distances: DistanceRegistry | None = None,
        transforms: TransformationRegistry | None = None,
        max_cached_comparisons: int = 30_000,
        max_cached_values: int = 500_000,
    ):
        self._pairs = list(pairs)
        self._distances = distances if distances is not None else default_distances()
        self._transforms = (
            transforms if transforms is not None else default_transforms()
        )
        self._comparison_cache: dict[tuple, np.ndarray] = {}
        self._value_cache: dict[tuple, tuple[str, ...]] = {}
        self._max_cached_comparisons = max_cached_comparisons
        self._max_cached_values = max_cached_values
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def pairs(self) -> list[tuple[Entity, Entity]]:
        return list(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    # -- value operators ----------------------------------------------------
    def _values(self, node: ValueNode, entity: Entity, side: str) -> tuple[str, ...]:
        key = (node, side, entity.uid)
        cached = self._value_cache.get(key)
        if cached is not None:
            return cached
        values = evaluate_value(node, entity, self._transforms)
        if len(self._value_cache) >= self._max_cached_values:
            self._value_cache.clear()
        self._value_cache[key] = values
        return values

    # -- similarity operators -----------------------------------------------
    def scores(self, node: SimilarityNode) -> np.ndarray:
        """Score vector of a similarity node over all pairs (read-only)."""
        if isinstance(node, ComparisonNode):
            return self._comparison_scores(node)
        if isinstance(node, AggregationNode):
            return self._aggregation_scores(node)
        raise TypeError(f"not a similarity operator: {type(node).__name__}")

    def _comparison_scores(self, node: ComparisonNode) -> np.ndarray:
        # Weight does not influence the comparison's own score, so it is
        # excluded from the cache key.
        key = (node.metric, node.threshold, node.source, node.target)
        cached = self._comparison_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        measure = self._distances.get(node.metric)
        threshold = node.threshold
        out = np.zeros(len(self._pairs), dtype=np.float64)
        for i, (entity_a, entity_b) in enumerate(self._pairs):
            values_a = self._values(node.source, entity_a, "a")
            if not values_a:
                continue
            values_b = self._values(node.target, entity_b, "b")
            if not values_b:
                continue
            distance = measure.evaluate(values_a, values_b)
            if distance >= INFINITE_DISTANCE:
                continue
            if threshold <= 0.0:
                if distance == 0.0:
                    out[i] = 1.0
            elif distance <= threshold:
                out[i] = 1.0 - distance / threshold
        out.setflags(write=False)
        if len(self._comparison_cache) >= self._max_cached_comparisons:
            self._comparison_cache.clear()
        self._comparison_cache[key] = out
        return out

    def _aggregation_scores(self, node: AggregationNode) -> np.ndarray:
        child_scores = [self.scores(child) for child in node.operators]
        stacked = np.vstack(child_scores)
        if node.function == "min":
            return stacked.min(axis=0)
        if node.function == "max":
            return stacked.max(axis=0)
        if node.function == "wmean":
            weights = np.array(
                [child.weight for child in node.operators], dtype=np.float64
            )
            return weights @ stacked / weights.sum()
        raise ValueError(f"unknown aggregation function {node.function!r}")

    def predictions(self, node: SimilarityNode) -> np.ndarray:
        """Boolean match predictions at the 0.5 threshold."""
        return self.scores(node) >= 0.5

    def clear_caches(self) -> None:
        self._comparison_cache.clear()
        self._value_cache.clear()


def evaluate_rule(
    rule_root: SimilarityNode,
    entity_a: Entity,
    entity_b: Entity,
    distances: DistanceRegistry | None = None,
    transforms: TransformationRegistry | None = None,
) -> float:
    """One-off evaluation of a rule on a single entity pair.

    Convenience wrapper for interactive use; batch workloads should use
    :class:`PairEvaluator`.
    """
    distances = distances if distances is not None else default_distances()
    transforms = transforms if transforms is not None else default_transforms()
    if isinstance(rule_root, ComparisonNode):
        values_a = evaluate_value(rule_root.source, entity_a, transforms)
        values_b = evaluate_value(rule_root.target, entity_b, transforms)
        return compare_value_sets(
            rule_root.metric, rule_root.threshold, values_a, values_b, distances
        )
    if isinstance(rule_root, AggregationNode):
        child_scores = [
            evaluate_rule(child, entity_a, entity_b, distances, transforms)
            for child in rule_root.operators
        ]
        if rule_root.function == "min":
            return min(child_scores)
        if rule_root.function == "max":
            return max(child_scores)
        if rule_root.function == "wmean":
            weights = [child.weight for child in rule_root.operators]
            total = sum(weights)
            return sum(w * s for w, s in zip(weights, child_scores)) / total
        raise ValueError(f"unknown aggregation function {rule_root.function!r}")
    raise TypeError(f"not a similarity operator: {type(rule_root).__name__}")
