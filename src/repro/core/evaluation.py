"""Linkage rule semantics (Definitions 5-8) and batch evaluation.

:class:`PairEvaluator` evaluates similarity nodes over a *fixed* list
of entity pairs and returns numpy score vectors. Since the engine
refactor it is a thin facade over :class:`repro.engine.EngineSession`:
rule trees are compiled into deduplicated plans, transformed values are
materialised per unique entity, and thresholding runs as numpy array
operations over cached distance columns (see ``docs/engine.md``).

Semantics notes:

* Comparison (Definition 7): ``1 - d/theta`` when ``d <= theta``, else
  0. The degenerate ``theta = 0`` means exact matching: similarity 1
  when the distance is 0, else 0.
* Comparisons where either side produces no values yield similarity 0
  (the paper leaves this case open; Silk treats absent values as
  non-matching, and the drug datasets rely on this for their partially
  missing identifiers).
* Aggregation (Definition 8): ``min`` / ``max`` ignore weights,
  ``wmean`` uses the integer weights attached to its child operators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    SimilarityNode,
    ValueNode,
)
from repro.data.entity import Entity
from repro.distances.base import INFINITE_DISTANCE
from repro.distances.registry import DistanceRegistry
from repro.distances.registry import default_registry as default_distances
from repro.engine.session import EngineSession, EngineStats
from repro.engine.values import evaluate_value_op
from repro.transforms.registry import TransformationRegistry
from repro.transforms.registry import default_registry as default_transforms

#: Aggregation function names accepted by :class:`AggregationNode`.
AGGREGATION_FUNCTIONS = ("min", "max", "wmean")


def evaluate_value(
    node: ValueNode,
    entity: Entity,
    transforms: TransformationRegistry,
) -> tuple[str, ...]:
    """Evaluate a value operator for one entity (Definitions 5 & 6)."""
    return evaluate_value_op(node, entity, transforms)


def compare_value_sets(
    metric_name: str,
    threshold: float,
    values_a: Sequence[str],
    values_b: Sequence[str],
    distances: DistanceRegistry,
) -> float:
    """Similarity of two value sets under a comparison's measure."""
    if not values_a or not values_b:
        return 0.0
    distance = distances.get(metric_name).evaluate(values_a, values_b)
    if distance >= INFINITE_DISTANCE:
        return 0.0
    if threshold <= 0.0:
        return 1.0 if distance == 0.0 else 0.0
    if distance > threshold:
        return 0.0
    return 1.0 - distance / threshold


class PairEvaluator:
    """Evaluates similarity nodes over a fixed list of entity pairs.

    A compatibility facade over one :class:`EngineSession` pair
    context. Passing ``session`` shares an existing session (and its
    caches) instead of creating a private one; registries and cache
    capacities are then owned by the session and may not be overridden
    here. ``cache_hits`` / ``cache_misses`` report the score tier of
    the backing session — with a private session that matches the
    seed's per-evaluator comparison-cache counters, with a shared
    session the counts aggregate all sharers.
    """

    def __init__(
        self,
        pairs: Sequence[tuple[Entity, Entity]],
        distances: DistanceRegistry | None = None,
        transforms: TransformationRegistry | None = None,
        max_cached_comparisons: int | None = None,
        max_cached_values: int | None = None,
        session: EngineSession | None = None,
        workers: "int | str | None" = None,
        cache_dir: "str | None" = None,
    ):
        if session is None:
            # None means "engine defaults". An explicit comparison bound
            # caps both per-comparison tiers (distance columns and score
            # vectors) — the column tier is what actually holds the bulk
            # of per-comparison memory now. ``workers`` selects the
            # session's executor for population-level evaluation
            # (default: the REPRO_ENGINE_WORKERS environment variable).
            capacities: dict[str, int] = {}
            if max_cached_values is not None:
                capacities["max_value_entries"] = max_cached_values
            if max_cached_comparisons is not None:
                capacities["max_column_entries"] = max_cached_comparisons
                capacities["max_score_entries"] = max_cached_comparisons
            session = EngineSession(
                distances=distances,
                transforms=transforms,
                executor=workers,
                store=cache_dir,
                **capacities,
            )
        else:
            # A shared session evaluates with *its* registries and cache
            # bounds; accepting different ones here would silently
            # change semantics (or silently do nothing).
            if distances is not None and distances is not session.distances:
                raise ValueError(
                    "conflicting distance registries: pass either a session "
                    "or a registry, not both"
                )
            if transforms is not None and transforms is not session.transforms:
                raise ValueError(
                    "conflicting transformation registries: pass either a "
                    "session or a registry, not both"
                )
            if max_cached_comparisons is not None or max_cached_values is not None:
                raise ValueError(
                    "cache capacities are owned by the session; configure "
                    "them on EngineSession instead"
                )
            if workers is not None:
                raise ValueError(
                    "the executor is owned by the session; configure "
                    "workers on EngineSession instead"
                )
            if cache_dir is not None:
                raise ValueError(
                    "the persistent store is owned by the session; "
                    "configure store= on EngineSession instead"
                )
        self._session = session
        self._context = session.context(pairs)

    @property
    def pairs(self) -> list[tuple[Entity, Entity]]:
        return self._context.pairs

    def __len__(self) -> int:
        return len(self._context)

    @property
    def session(self) -> EngineSession:
        """The engine session backing this evaluator."""
        return self._session

    # -- similarity operators -----------------------------------------------
    def scores(self, node: SimilarityNode) -> np.ndarray:
        """Score vector of a similarity node over all pairs (comparison
        vectors are cached and read-only)."""
        return self._context.scores(node)

    def predictions(self, node: SimilarityNode) -> np.ndarray:
        """Boolean match predictions at the 0.5 threshold."""
        return self._context.predictions(node)

    def prime_population(self, roots: Sequence[SimilarityNode]) -> None:
        """Evaluate a whole population through one compiled plan,
        warming the distance-column and score caches; subsequent
        per-rule :meth:`scores` calls hit those caches."""
        self._context.population_scores(roots)

    # -- cache statistics ----------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Comparison-level (score tier) cache hits of the backing
        session (session-wide when the session is shared)."""
        return self._session.stats().scores.hits

    @property
    def cache_misses(self) -> int:
        """Comparison-level (score tier) cache misses of the backing
        session (session-wide when the session is shared)."""
        return self._session.stats().scores.misses

    def engine_stats(self) -> EngineStats:
        """Full per-tier cache and compiler statistics."""
        return self._session.stats()

    def clear_caches(self) -> None:
        """Drop the backing session's cached values, columns, scores."""
        self._session.clear_caches()

    def release(self) -> None:
        """Evict this evaluator's context-local (column/score) cache
        entries from the backing session.

        Only relevant when sharing a session across many short-lived
        evaluators: released entries can never hit again once the
        evaluator is discarded, and releasing keeps them from crowding
        out live ones. The entity-keyed value tier stays. Usable as a
        context manager: ``with PairEvaluator(pairs, session=s) as ev:``.
        """
        self._session.release_context(self._context)

    def __enter__(self) -> "PairEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def evaluate_rule(
    rule_root: SimilarityNode,
    entity_a: Entity,
    entity_b: Entity,
    distances: DistanceRegistry | None = None,
    transforms: TransformationRegistry | None = None,
) -> float:
    """One-off evaluation of a rule on a single entity pair.

    Convenience wrapper for interactive use and the reference semantics
    for engine parity tests; batch workloads should use
    :class:`PairEvaluator`.
    """
    distances = distances if distances is not None else default_distances()
    transforms = transforms if transforms is not None else default_transforms()
    if isinstance(rule_root, ComparisonNode):
        values_a = evaluate_value(rule_root.source, entity_a, transforms)
        values_b = evaluate_value(rule_root.target, entity_b, transforms)
        return compare_value_sets(
            rule_root.metric, rule_root.threshold, values_a, values_b, distances
        )
    if isinstance(rule_root, AggregationNode):
        child_scores = [
            evaluate_rule(child, entity_a, entity_b, distances, transforms)
            for child in rule_root.operators
        ]
        if rule_root.function == "min":
            return min(child_scores)
        if rule_root.function == "max":
            return max(child_scores)
        if rule_root.function == "wmean":
            weights = [child.weight for child in rule_root.operators]
            total = sum(weights)
            return sum(w * s for w, s in zip(weights, child_scores)) / total
        raise ValueError(f"unknown aggregation function {rule_root.function!r}")
    raise TypeError(f"not a similarity operator: {type(rule_root).__name__}")
