"""Finding compatible property pairs (Algorithm 2, Section 5.1).

The seeding step analyses the entities behind the positive reference
links: for each property pair and each detector distance function, the
lower-cased, tokenised values are compared; if any token pair is within
the detector threshold, the property pair is recorded together with the
distance measure that made it compatible. The GP's random rule
generator then only builds comparisons over these pairs, which shrinks
the search space dramatically on wide schemata (Table 14).

The paper uses Levenshtein with threshold 1 as the only detector; we
additionally detect numeric / geographic / date compatibility (the
"for all distance functions fd" loop of Algorithm 2) so that seeded
comparisons over coordinates and dates carry an appropriate measure.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Sequence

from repro.data.entity import Entity
from repro.data.reference_links import Link
from repro.data.source import DataSource
from repro.distances.dates import parse_date
from repro.distances.geographic import parse_point
from repro.distances.levenshtein import levenshtein
from repro.distances.numeric import parse_number

_TOKEN_CAP = 24  # tokens considered per property value set

# Split on any non-alphanumeric character. Splitting only on whitespace
# would hide URI-wrapped labels ("http://dbpedia.org/resource/Salem")
# from the compatibility check, and the seeding would then never offer
# the label property to the learner.
_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)


@dataclass(frozen=True)
class CompatibleProperty:
    """A (source property, target property, measure) triple."""

    source_property: str
    target_property: str
    measure: str


def _tokens(values: Sequence[str]) -> list[str]:
    tokens: list[str] = []
    for value in values:
        for token in _TOKEN_RE.findall(value.lower()):
            if len(token) < 3:
                continue  # one/two-letter tokens collide by chance
            tokens.append(token)
            if len(tokens) >= _TOKEN_CAP:
                return tokens
    return tokens


def _levenshtein_compatible(
    values_a: Sequence[str], values_b: Sequence[str], threshold: float
) -> bool:
    tokens_a = _tokens(values_a)
    tokens_b = _tokens(values_b)
    if not tokens_a or not tokens_b:
        return False
    bound = int(threshold)
    for ta in tokens_a:
        for tb in tokens_b:
            if levenshtein(ta, tb, bound=bound) <= threshold:
                return True
    return False


def _geographic_compatible(
    values_a: Sequence[str], values_b: Sequence[str], threshold: float = 100_000.0
) -> bool:
    from repro.distances.geographic import haversine_metres

    points_a = [p for v in values_a if (p := parse_point(v)) is not None]
    points_b = [p for v in values_b if (p := parse_point(v)) is not None]
    if not points_a or not points_b:
        return False
    return any(
        haversine_metres(pa[0], pa[1], pb[0], pb[1]) <= threshold
        for pa in points_a
        for pb in points_b
    )


def _date_compatible(
    values_a: Sequence[str], values_b: Sequence[str], threshold_days: float = 1000.0
) -> bool:
    dates_a = [d for v in values_a if (d := parse_date(v)) is not None]
    dates_b = [d for v in values_b if (d := parse_date(v)) is not None]
    if not dates_a or not dates_b:
        return False
    return any(
        abs((da - db).days) <= threshold_days for da in dates_a for db in dates_b
    )


def _numeric_compatible(
    values_a: Sequence[str], values_b: Sequence[str], tolerance: float = 0.1
) -> bool:
    numbers_a = [n for v in values_a if (n := parse_number(v)) is not None]
    numbers_b = [n for v in values_b if (n := parse_number(v)) is not None]
    if not numbers_a or not numbers_b:
        return False
    for na in numbers_a:
        for nb in numbers_b:
            scale = max(abs(na), abs(nb), 1.0)
            if abs(na - nb) <= tolerance * scale:
                return True
    return False


def find_compatible_properties(
    source_a: DataSource,
    source_b: DataSource,
    positive_links: Sequence[Link],
    levenshtein_threshold: float = 1.0,
    max_links: int = 100,
    min_support: float = 0.1,
    rng: random.Random | None = None,
) -> list[CompatibleProperty]:
    """Algorithm 2: property pairs holding similar values.

    ``max_links`` bounds the analysed sample for wide schemata;
    ``min_support`` drops pairs compatible on fewer than that fraction
    of sampled links (spurious single-link token collisions on wide
    schemata would otherwise flood the list). Results are ordered by
    descending support so callers can weight sampling towards strongly
    compatible pairs.
    """
    links = list(positive_links)
    if rng is not None:
        rng.shuffle(links)
    links = links[:max_links]
    if not links:
        return []

    support: dict[CompatibleProperty, int] = {}
    for uid_a, uid_b in links:
        entity_a = source_a.get(uid_a)
        entity_b = source_b.get(uid_b)
        _analyse_pair(entity_a, entity_b, levenshtein_threshold, support)

    threshold_count = max(1, int(min_support * len(links)))
    ranked = sorted(support.items(), key=lambda item: (-item[1], str(item[0])))
    return [pair for pair, count in ranked if count >= threshold_count]


def _analyse_pair(
    entity_a: Entity,
    entity_b: Entity,
    levenshtein_threshold: float,
    support: dict[CompatibleProperty, int],
) -> None:
    for prop_a in entity_a.property_names():
        values_a = entity_a.values(prop_a)
        for prop_b in entity_b.property_names():
            values_b = entity_b.values(prop_b)
            if _levenshtein_compatible(values_a, values_b, levenshtein_threshold):
                key = CompatibleProperty(prop_a, prop_b, "levenshtein")
                support[key] = support.get(key, 0) + 1
            if _geographic_compatible(values_a, values_b):
                key = CompatibleProperty(prop_a, prop_b, "geographic")
                support[key] = support.get(key, 0) + 1
            if _date_compatible(values_a, values_b):
                key = CompatibleProperty(prop_a, prop_b, "date")
                support[key] = support.get(key, 0) + 1
            elif _numeric_compatible(values_a, values_b):
                key = CompatibleProperty(prop_a, prop_b, "numeric")
                support[key] = support.get(key, 0) + 1
