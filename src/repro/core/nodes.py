"""Linkage rule operator tree (Section 3 of the paper).

Four node types build a strongly-typed tree (Figure 1):

* :class:`PropertyNode` — retrieves the values of one property,
* :class:`TransformationNode` — transforms value sets,
* :class:`ComparisonNode` — distance measure + threshold -> similarity,
* :class:`AggregationNode` — combines child similarities.

Nodes are immutable (frozen dataclasses). All structural edits used by
the genetic operators create new trees via :func:`replace_node`. The
two sides of a comparison are positional: the ``source`` value tree is
evaluated against entities of data source A, ``target`` against B,
which is what lets GenLink match across different schemata.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Union


@dataclass(frozen=True)
class PropertyNode:
    """Value operator retrieving all values of ``property_name``."""

    property_name: str

    def children(self) -> tuple["RuleNode", ...]:
        return ()

    def operator_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"property({self.property_name})"


@dataclass(frozen=True)
class TransformationNode:
    """Value operator applying a named transformation function.

    ``params`` carries transformation configuration (e.g. the search /
    replacement strings of ``replace``) as a sorted tuple of key/value
    pairs so the node stays hashable.
    """

    function: str
    inputs: tuple["ValueNode", ...]
    params: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("transformation requires at least one input")

    def children(self) -> tuple["RuleNode", ...]:
        return self.inputs

    def operator_count(self) -> int:
        return 1 + sum(node.operator_count() for node in self.inputs)

    def __str__(self) -> str:
        inner = ", ".join(str(node) for node in self.inputs)
        return f"{self.function}({inner})"


ValueNode = Union[PropertyNode, TransformationNode]


@dataclass(frozen=True)
class ComparisonNode:
    """Similarity operator comparing two value operators (Definition 7).

    Yields ``1 - d/threshold`` when the distance ``d`` is within the
    threshold and 0 otherwise, so scores live in [0, 1] and the overall
    rule classifies at 0.5.
    """

    metric: str
    threshold: float
    source: "ValueNode"
    target: "ValueNode"
    weight: int = 1

    def __post_init__(self) -> None:
        if self.threshold < 0.0:
            raise ValueError("comparison threshold must be >= 0")
        if self.weight < 1:
            raise ValueError("weight must be >= 1")

    def children(self) -> tuple["RuleNode", ...]:
        return (self.source, self.target)

    def operator_count(self) -> int:
        return 1 + self.source.operator_count() + self.target.operator_count()

    def __str__(self) -> str:
        return (
            f"compare({self.metric}, θ={self.threshold:g}, "
            f"{self.source}, {self.target})"
        )


@dataclass(frozen=True)
class AggregationNode:
    """Similarity operator combining child similarities (Definition 8)."""

    function: str
    operators: tuple["SimilarityNode", ...]
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.operators:
            raise ValueError("aggregation requires at least one operator")
        if self.weight < 1:
            raise ValueError("weight must be >= 1")

    def children(self) -> tuple["RuleNode", ...]:
        return self.operators

    def operator_count(self) -> int:
        return 1 + sum(node.operator_count() for node in self.operators)

    def __str__(self) -> str:
        inner = ", ".join(str(node) for node in self.operators)
        return f"{self.function}({inner})"


SimilarityNode = Union[ComparisonNode, AggregationNode]
RuleNode = Union[PropertyNode, TransformationNode, ComparisonNode, AggregationNode]


def iter_nodes(node: RuleNode) -> Iterator[RuleNode]:
    """Depth-first pre-order iteration over a subtree."""
    yield node
    for child in node.children():
        yield from iter_nodes(child)


def collect_nodes(node: RuleNode, node_types: tuple[type, ...]) -> list[RuleNode]:
    """All nodes in the subtree matching any of the given types."""
    return [n for n in iter_nodes(node) if isinstance(n, node_types)]


def replace_node(root: RuleNode, old: RuleNode, new: RuleNode) -> RuleNode:
    """Return a copy of ``root`` with the first occurrence of ``old``
    (by identity, falling back to equality) replaced by ``new``.

    Identity comparison lets callers target one specific node even when
    structurally equal twins exist elsewhere in the tree.
    """
    replaced = [False]

    def visit(node: RuleNode) -> RuleNode:
        if not replaced[0] and (node is old or (node == old and old is not None)):
            replaced[0] = True
            return new
        if isinstance(node, PropertyNode):
            return node
        if isinstance(node, TransformationNode):
            new_inputs = tuple(visit(child) for child in node.inputs)
            if new_inputs == node.inputs:
                return node
            return replace(node, inputs=new_inputs)
        if isinstance(node, ComparisonNode):
            new_source = visit(node.source)
            new_target = visit(node.target)
            if new_source is node.source and new_target is node.target:
                return node
            return replace(node, source=new_source, target=new_target)
        if isinstance(node, AggregationNode):
            new_ops = tuple(visit(child) for child in node.operators)
            if new_ops == node.operators:
                return node
            return replace(node, operators=new_ops)
        raise TypeError(f"unexpected node type {type(node)!r}")

    result = visit(root)
    return result
