"""Post-hoc analysis and simplification of linkage rules.

GP-evolved rules frequently carry redundant structure — duplicate
children inside an aggregation, single-child aggregations, nested
aggregations with the same function — that does not change semantics
but hurts readability (one of the paper's selling points is that
learned rules can be inspected and improved by humans).
:func:`simplify_rule` removes the redundancy; :func:`rule_summary`
reports the structural statistics used in Section 6.2's rule
complexity discussion (e.g. "5.6 comparisons and 3.2 transformations").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    SimilarityNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule


def _simplify_similarity(node: SimilarityNode) -> SimilarityNode:
    if isinstance(node, ComparisonNode):
        return node
    assert isinstance(node, AggregationNode)
    simplified = [_simplify_similarity(child) for child in node.operators]

    # Flatten nested min-into-min / max-into-max: they are associative,
    # so the hierarchy adds nothing. (wmean is not associative; nested
    # wmean hierarchies are kept.)
    if node.function in ("min", "max"):
        flattened: list[SimilarityNode] = []
        for child in simplified:
            if isinstance(child, AggregationNode) and (
                child.function == node.function
            ):
                flattened.extend(child.operators)
            else:
                flattened.append(child)
        simplified = flattened

    # Drop duplicate children. For min/max a duplicate never changes
    # the result; for wmean duplicates are merged by summing weights so
    # the weighted mean is preserved exactly.
    unique: list[SimilarityNode] = []
    for child in simplified:
        merged = False
        for i, existing in enumerate(unique):
            if _equivalent(existing, child):
                if node.function == "wmean":
                    unique[i] = _with_weight(
                        existing, existing.weight + child.weight
                    )
                merged = True
                break
        if not merged:
            unique.append(child)

    if len(unique) == 1:
        # A single-child aggregation is the child itself (the child
        # keeps the aggregation's weight so enclosing wmeans still see
        # the same contribution).
        return _with_weight(unique[0], node.weight)
    return replace(node, operators=tuple(unique))


def _equivalent(a: SimilarityNode, b: SimilarityNode) -> bool:
    """Structural equality ignoring weights at the top level."""
    return _with_weight(a, 1) == _with_weight(b, 1)


def _with_weight(node: SimilarityNode, weight: int) -> SimilarityNode:
    return replace(node, weight=max(1, weight))


def simplify_rule(rule: LinkageRule) -> LinkageRule:
    """Return a semantically equivalent rule with redundancy removed.

    Guarantees: the simplified rule assigns the same similarity score
    to every entity pair (min/max flattening and duplicate dropping are
    exact; wmean duplicates merge into summed weights).
    """
    return LinkageRule(_simplify_similarity(rule.root))


@dataclass(frozen=True)
class RuleSummary:
    """Structural statistics of a rule (cf. Section 6.2)."""

    operators: int
    comparisons: int
    aggregations: int
    transformations: int
    properties: int
    depth: int
    measures: tuple[str, ...]
    transformation_functions: tuple[str, ...]
    compared_properties: tuple[tuple[str, str], ...]

    def describe(self) -> str:
        return (
            f"{self.comparisons} comparison(s), "
            f"{self.transformations} transformation(s), "
            f"{self.aggregations} aggregation(s), depth {self.depth}"
        )


def rule_summary(rule: LinkageRule) -> RuleSummary:
    """Collect the structural statistics of a rule."""

    def root_property(node) -> str:
        while isinstance(node, TransformationNode):
            node = node.inputs[0]
        assert isinstance(node, PropertyNode)
        return node.property_name

    comparisons = rule.comparisons()
    return RuleSummary(
        operators=rule.operator_count(),
        comparisons=len(comparisons),
        aggregations=len(rule.aggregations()),
        transformations=len(rule.transformations()),
        properties=len(rule.properties()),
        depth=rule.depth(),
        measures=tuple(sorted({c.metric for c in comparisons})),
        transformation_functions=tuple(
            sorted({t.function for t in rule.transformations()})
        ),
        compared_properties=tuple(
            (root_property(c.source), root_property(c.target)) for c in comparisons
        ),
    )
