"""Rule serialisation: JSON-able dicts and human-readable tree rendering.

A core selling point of GenLink's representation (contribution 1 of the
paper) is that learned rules "can be understood and further improved by
humans". :func:`render_rule` produces the ASCII equivalent of the
paper's Figures 2, 7 and 8; the dict form round-trips losslessly for
storage and transfer.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    RuleNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule


def _node_to_dict(node: RuleNode) -> dict[str, Any]:
    if isinstance(node, PropertyNode):
        return {"type": "property", "property": node.property_name}
    if isinstance(node, TransformationNode):
        return {
            "type": "transformation",
            "function": node.function,
            "params": dict(node.params),
            "inputs": [_node_to_dict(child) for child in node.inputs],
        }
    if isinstance(node, ComparisonNode):
        return {
            "type": "comparison",
            "metric": node.metric,
            "threshold": node.threshold,
            "weight": node.weight,
            "source": _node_to_dict(node.source),
            "target": _node_to_dict(node.target),
        }
    if isinstance(node, AggregationNode):
        return {
            "type": "aggregation",
            "function": node.function,
            "weight": node.weight,
            "operators": [_node_to_dict(child) for child in node.operators],
        }
    raise TypeError(f"unknown node type {type(node).__name__}")


def _node_from_dict(data: dict[str, Any]) -> RuleNode:
    node_type = data.get("type")
    if node_type == "property":
        return PropertyNode(property_name=data["property"])
    if node_type == "transformation":
        return TransformationNode(
            function=data["function"],
            inputs=tuple(_node_from_dict(child) for child in data["inputs"]),
            params=tuple(sorted(data.get("params", {}).items())),
        )
    if node_type == "comparison":
        return ComparisonNode(
            metric=data["metric"],
            threshold=float(data["threshold"]),
            weight=int(data.get("weight", 1)),
            source=_node_from_dict(data["source"]),  # type: ignore[arg-type]
            target=_node_from_dict(data["target"]),  # type: ignore[arg-type]
        )
    if node_type == "aggregation":
        return AggregationNode(
            function=data["function"],
            weight=int(data.get("weight", 1)),
            operators=tuple(
                _node_from_dict(child) for child in data["operators"]
            ),  # type: ignore[arg-type]
        )
    raise ValueError(f"unknown node type in serialised rule: {node_type!r}")


def rule_to_dict(rule: LinkageRule) -> dict[str, Any]:
    """Serialise a rule to a JSON-able dict."""
    return {"linkageRule": _node_to_dict(rule.root)}


def rule_from_dict(data: dict[str, Any]) -> LinkageRule:
    """Rebuild a rule from :func:`rule_to_dict` output (validated)."""
    if "linkageRule" not in data:
        raise ValueError("missing 'linkageRule' key")
    root = _node_from_dict(data["linkageRule"])
    if not isinstance(root, (ComparisonNode, AggregationNode)):
        raise ValueError("rule root must be a comparison or aggregation")
    return LinkageRule(root)


def rule_to_json(rule: LinkageRule, indent: int | None = 2) -> str:
    """Serialise a rule as deterministic (sorted-keys) JSON."""
    return json.dumps(rule_to_dict(rule), indent=indent, sort_keys=True)


def rule_from_json(text: str) -> LinkageRule:
    """Parse a rule from its JSON form."""
    return rule_from_dict(json.loads(text))


def _render(node: RuleNode, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    if isinstance(node, PropertyNode):
        label = f"Property: {node.property_name}"
    elif isinstance(node, TransformationNode):
        params = ", ".join(f"{k}={v!r}" for k, v in node.params)
        suffix = f" [{params}]" if params else ""
        label = f"Transform: {node.function}{suffix}"
    elif isinstance(node, ComparisonNode):
        label = (
            f"Compare: {node.metric} (θ={node.threshold:g}, weight={node.weight})"
        )
    elif isinstance(node, AggregationNode):
        label = f"Aggregate: {node.function} (weight={node.weight})"
    else:  # pragma: no cover - exhaustive above
        label = repr(node)
    lines.append(prefix + connector + label)
    children = node.children()
    child_prefix = prefix + ("   " if is_last else "│  ")
    for i, child in enumerate(children):
        _render(child, child_prefix, i == len(children) - 1, lines)


def render_rule(rule: LinkageRule, title: str = "LinkageRule") -> str:
    """Render a rule as an ASCII tree (cf. Figures 2, 7 and 8)."""
    lines = [title]
    root = rule.root
    children_of_root = root.children()
    if isinstance(root, AggregationNode):
        lines.append(f"└─ Aggregate: {root.function} (weight={root.weight})")
    else:
        assert isinstance(root, ComparisonNode)
        lines.append(
            f"└─ Compare: {root.metric} (θ={root.threshold:g}, weight={root.weight})"
        )
    for i, child in enumerate(children_of_root):
        _render(child, "   ", i == len(children_of_root) - 1, lines)
    return "\n".join(lines)
