"""Active learning of linkage rules (query-by-committee).

The paper points to a companion method (Isele, Jentzsch & Bizer,
ICWE 2012, reference [21]) that minimises the number of entity pairs a
human has to confirm or reject: instead of labelling reference links up
front, the learner repeatedly queries the pair on which its current
*committee* of rules disagrees the most.

This module implements that extension on top of GenLink:

1. learn a population from the links labelled so far,
2. score every unlabelled candidate pair with the top-k rules,
3. query the oracle on the pair with maximal committee disagreement
   (vote entropy — the fraction of committee votes for "match" closest
   to one half),
4. repeat until the query budget is exhausted.

``examples/active_learning.py`` and
``benchmarks/bench_ext_active_learning.py`` show that committee
querying needs far fewer labels than random sampling for the same
F-measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.evaluation import PairEvaluator
from repro.core.fitness import FitnessFunction
from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.reference_links import Link, ReferenceLinkSet
from repro.data.source import DataSource

#: An oracle answers "do these two entities describe the same object?".
Oracle = Callable[[Entity, Entity], bool]


@dataclass
class ActiveLearningConfig:
    """Parameters of the active learning loop."""

    #: Total number of oracle queries.
    max_queries: int = 20
    #: Labelled pairs required before the first GenLink run; bootstrap
    #: queries are sampled randomly.
    bootstrap_queries: int = 4
    #: Committee: the top-k rules of the final population.
    committee_size: int = 10
    #: GenLink budget per round (small — it runs once per query).
    genlink: GenLinkConfig = field(
        default_factory=lambda: GenLinkConfig(
            population_size=50, max_iterations=10
        )
    )
    #: Query selection: "committee" (vote entropy) or "random"
    #: (the baseline the ICWE paper compares against).
    strategy: str = "committee"

    def __post_init__(self) -> None:
        if self.max_queries < 1:
            raise ValueError("max_queries must be >= 1")
        if self.bootstrap_queries < 2:
            raise ValueError("need at least 2 bootstrap queries")
        if self.committee_size < 1:
            raise ValueError("committee_size must be >= 1")
        if self.strategy not in ("committee", "random"):
            raise ValueError("strategy must be 'committee' or 'random'")


@dataclass(frozen=True)
class QueryRecord:
    """One oracle interaction."""

    index: int
    link: Link
    label: bool
    disagreement: float


@dataclass
class ActiveLearningResult:
    """Outcome of an active learning session."""

    best_rule: LinkageRule
    labelled: ReferenceLinkSet
    queries: list[QueryRecord] = field(default_factory=list)
    #: Reference-set F1 after every learning round (parallel to the
    #: post-bootstrap queries), when a reference set was provided.
    f_measure_curve: list[float] = field(default_factory=list)


class ActiveGenLink:
    """Query-by-committee active learning around :class:`GenLink`."""

    def __init__(self, config: ActiveLearningConfig | None = None):
        self.config = config if config is not None else ActiveLearningConfig()

    def run(
        self,
        source_a: DataSource,
        source_b: DataSource,
        candidates: Sequence[Link],
        oracle: Oracle,
        rng: random.Random | int | None = None,
        reference: ReferenceLinkSet | None = None,
    ) -> ActiveLearningResult:
        """Run the loop over a pool of unlabelled candidate pairs.

        ``candidates`` is the unlabelled pool (e.g. produced by a
        blocker); ``oracle`` labels one pair at a time; ``reference``
        is an optional held-out link set for measuring progress.
        """
        rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        config = self.config
        pool: list[Link] = list(dict.fromkeys(candidates))
        if len(pool) < config.max_queries:
            raise ValueError(
                f"candidate pool ({len(pool)}) smaller than the query "
                f"budget ({config.max_queries})"
            )
        positive: list[Link] = []
        negative: list[Link] = []
        queries: list[QueryRecord] = []
        f_curve: list[float] = []

        def ask(link: Link, disagreement: float) -> None:
            entity_a = source_a.get(link[0])
            entity_b = source_b.get(link[1])
            label = bool(oracle(entity_a, entity_b))
            (positive if label else negative).append(link)
            pool.remove(link)
            queries.append(
                QueryRecord(
                    index=len(queries), link=link, label=label,
                    disagreement=disagreement,
                )
            )

        # Bootstrap. Candidate pools are overwhelmingly negative, so a
        # purely random bootstrap would rarely hit a positive within
        # the budget; instead likely positives (highest token-overlap
        # across all property values) alternate with random picks,
        # which find a negative almost surely.
        ranked = _rank_by_token_overlap(source_a, source_b, pool)
        rank_cursor = 0
        while len(queries) < config.bootstrap_queries or not (
            positive and negative
        ):
            if len(queries) >= config.max_queries or not pool:
                break
            want_positive = not positive or (negative and len(queries) % 2 == 0)
            if want_positive and rank_cursor < len(ranked):
                link = ranked[rank_cursor]
                rank_cursor += 1
                if link not in pool:
                    continue
            else:
                link = pool[rng.randrange(len(pool))]
            ask(link, disagreement=0.5)

        if not (positive and negative):
            raise RuntimeError(
                "bootstrap exhausted the query budget without finding "
                "both a positive and a negative pair"
            )

        learner = GenLink(config.genlink)
        result = None
        while True:
            labelled = ReferenceLinkSet(positive, negative)
            result = learner.learn(source_a, source_b, labelled, rng=rng)
            if reference is not None:
                f_curve.append(
                    _reference_f_measure(result.best_rule, source_a, source_b, reference)
                )
            if len(queries) >= config.max_queries or not pool:
                break
            link, disagreement = self._select_query(
                result.final_population, source_a, source_b, pool, rng
            )
            ask(link, disagreement)

        return ActiveLearningResult(
            best_rule=result.best_rule,
            labelled=ReferenceLinkSet(positive, negative),
            queries=queries,
            f_measure_curve=f_curve,
        )

    # -- query selection ---------------------------------------------------------
    def _select_query(
        self,
        population: Sequence[LinkageRule],
        source_a: DataSource,
        source_b: DataSource,
        pool: Sequence[Link],
        rng: random.Random,
    ) -> tuple[Link, float]:
        if self.config.strategy == "random":
            return pool[rng.randrange(len(pool))], 0.5
        committee = list(population[: self.config.committee_size])
        pairs = [(source_a.get(a), source_b.get(b)) for a, b in pool]
        evaluator = PairEvaluator(pairs)
        votes = np.vstack(
            [evaluator.predictions(rule.root) for rule in committee]
        ).astype(float)
        match_fraction = votes.mean(axis=0)
        # Vote entropy peaks at 0.5; pick the most contested pair.
        disagreement = 0.5 - np.abs(match_fraction - 0.5)
        best = int(np.argmax(disagreement))
        return pool[best], float(disagreement[best] + 0.5)


def _rank_by_token_overlap(
    source_a: DataSource,
    source_b: DataSource,
    pool: Sequence[Link],
) -> list[Link]:
    """Pool sorted by a cheap cross-property token-overlap proxy,
    best first — used only to bootstrap the first positive labels."""

    def tokens(entity: Entity) -> set[str]:
        collected: set[str] = set()
        for values in entity.properties.values():
            for value in values:
                collected.update(value.lower().split())
        return collected

    token_cache: dict[str, set[str]] = {}

    def cached_tokens(source: DataSource, uid: str) -> set[str]:
        key = f"{source.name}:{uid}"
        if key not in token_cache:
            token_cache[key] = tokens(source.get(uid))
        return token_cache[key]

    def overlap(link: Link) -> float:
        tokens_a = cached_tokens(source_a, link[0])
        tokens_b = cached_tokens(source_b, link[1])
        if not tokens_a or not tokens_b:
            return 0.0
        return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)

    return sorted(pool, key=overlap, reverse=True)


def _reference_f_measure(
    rule: LinkageRule,
    source_a: DataSource,
    source_b: DataSource,
    reference: ReferenceLinkSet,
) -> float:
    pairs, labels = reference.labelled_pairs(source_a, source_b)
    return FitnessFunction(PairEvaluator(pairs), labels).f_measure(rule)


def oracle_from_links(positive: Sequence[Link]) -> Oracle:
    """Build an oracle from known ground-truth positive links —
    the standard way to simulate a human expert in evaluations."""
    truth = {tuple(link) for link in positive}

    def oracle(entity_a: Entity, entity_b: Entity) -> bool:
        return (entity_a.uid, entity_b.uid) in truth

    return oracle
