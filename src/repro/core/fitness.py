"""Fitness measures: confusion counts, F-measure, MCC, parsimony.

The paper uses Matthews correlation coefficient as the fitness signal
(robust to class imbalance) combined with a parsimony penalty of 0.05
per operator to suppress bloat (Section 5.2):

    fitness = mcc - 0.05 * operator_count
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.evaluation import PairEvaluator
from repro.core.rule import LinkageRule
from repro.engine.session import EngineStats


@dataclass(frozen=True)
class ConfusionCounts:
    """True/false positive/negative counts over reference links."""

    tp: int
    tn: int
    fp: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.tn + self.fp + self.fn

    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    def f_measure(self) -> float:
        p = self.precision()
        r = self.recall()
        return 2.0 * p * r / (p + r) if (p + r) > 0.0 else 0.0

    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    def mcc(self) -> float:
        """Matthews correlation coefficient in [-1, 1]; 0 on degenerate
        denominators (the standard convention)."""
        tp, tn, fp, fn = self.tp, self.tn, self.fp, self.fn
        denominator = math.sqrt(
            float(tp + fp) * float(tp + fn) * float(tn + fp) * float(tn + fn)
        )
        if denominator == 0.0:
            return 0.0
        return (tp * tn - fp * fn) / denominator


def confusion_counts(
    predictions: Sequence[bool] | np.ndarray,
    labels: Sequence[bool] | np.ndarray,
) -> ConfusionCounts:
    """Build confusion counts from parallel prediction/label vectors."""
    predicted = np.asarray(predictions, dtype=bool)
    actual = np.asarray(labels, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predictions {predicted.shape} vs labels {actual.shape}"
        )
    tp = int(np.count_nonzero(predicted & actual))
    tn = int(np.count_nonzero(~predicted & ~actual))
    fp = int(np.count_nonzero(predicted & ~actual))
    fn = int(np.count_nonzero(~predicted & actual))
    return ConfusionCounts(tp=tp, tn=tn, fp=fp, fn=fn)


def matthews_correlation(
    predictions: Sequence[bool] | np.ndarray,
    labels: Sequence[bool] | np.ndarray,
) -> float:
    """MCC of parallel prediction/label vectors."""
    return confusion_counts(predictions, labels).mcc()


def f_measure(
    predictions: Sequence[bool] | np.ndarray,
    labels: Sequence[bool] | np.ndarray,
) -> float:
    """F1 of parallel prediction/label vectors."""
    return confusion_counts(predictions, labels).f_measure()


class FitnessFunction:
    """MCC-with-parsimony fitness over a fixed labelled pair set."""

    def __init__(
        self,
        evaluator: PairEvaluator,
        labels: Sequence[bool],
        parsimony_weight: float = 0.005,
        parsimony_mode: str = "similarity",
    ):
        """Create a fitness function.

        ``parsimony_mode`` selects what "operator count" means in the
        paper's formula: ``"all"`` counts every node (the literal
        reading), ``"similarity"`` counts comparisons and aggregations
        only. The literal reading penalises a second comparison by 0.15
        or more, which collapses populations to single-comparison rules
        and contradicts the multi-comparison rules the paper reports
        learning (Fig. 7); counting similarity operators reproduces the
        reported behaviour, so it is the default.
        """
        if len(labels) != len(evaluator):
            raise ValueError(
                f"label count {len(labels)} != pair count {len(evaluator)}"
            )
        if parsimony_mode not in ("all", "similarity"):
            raise ValueError("parsimony_mode must be 'all' or 'similarity'")
        self._evaluator = evaluator
        self._labels = np.asarray(labels, dtype=bool)
        self._parsimony_weight = parsimony_weight
        self._parsimony_mode = parsimony_mode

    @property
    def evaluator(self) -> PairEvaluator:
        return self._evaluator

    @property
    def labels(self) -> np.ndarray:
        return self._labels.copy()

    def prime_population(self, rules: Sequence[LinkageRule]) -> None:
        """Evaluate a whole population through one compiled engine plan
        so the per-rule calls below hit warm caches (shared subtrees
        are computed exactly once)."""
        self._evaluator.prime_population([rule.root for rule in rules])

    def engine_stats(self) -> EngineStats:
        """Cache statistics of the backing engine session."""
        return self._evaluator.engine_stats()

    def confusion(self, rule: LinkageRule) -> ConfusionCounts:
        return confusion_counts(self._evaluator.predictions(rule.root), self._labels)

    def operator_count(self, rule: LinkageRule) -> int:
        if self._parsimony_mode == "all":
            return rule.operator_count()
        return len(rule.comparisons()) + len(rule.aggregations())

    def fitness(self, rule: LinkageRule) -> float:
        """mcc - parsimony_weight * operator_count (Section 5.2)."""
        mcc = self.confusion(rule).mcc()
        return mcc - self._parsimony_weight * self.operator_count(rule)

    def f_measure(self, rule: LinkageRule) -> float:
        return self.confusion(rule).f_measure()

    def mcc(self, rule: LinkageRule) -> float:
        return self.confusion(rule).mcc()
