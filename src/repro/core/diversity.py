"""Population diversity and convergence diagnostics.

Genetic programming degrades when the population collapses onto a
single genotype too early (premature convergence) — the specialised
crossover operators of Section 5.3 exist precisely to keep recombining
distinct aspects of the rules. This module quantifies that:

* :func:`structural_signature` reduces a rule to the hashable shape a
  human would recognise (which properties are compared, with which
  measures, under which aggregation functions), ignoring thresholds
  and weights;
* :func:`snapshot_population` summarises one generation (diversity
  ratios, fitness spread, structure sizes);
* :class:`DiversityTracker` plugs into :meth:`GenLink.learn` as an
  observer, collects one snapshot per iteration and detects
  convergence/stagnation.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    RuleNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule


def structural_signature(rule: LinkageRule) -> tuple:
    """A hashable signature of a rule's structure.

    Two rules share a signature iff they have the same tree shape with
    the same functions, measures and property names; thresholds and
    weights (the continuous genes) are ignored. This is the right
    granularity for diversity: threshold crossover explores within one
    signature, the other operators move between signatures.
    """

    def visit(node: RuleNode) -> tuple:
        if isinstance(node, PropertyNode):
            return ("p", node.property_name)
        if isinstance(node, TransformationNode):
            return ("t", node.function, tuple(visit(c) for c in node.inputs))
        if isinstance(node, ComparisonNode):
            return ("c", node.metric, visit(node.source), visit(node.target))
        assert isinstance(node, AggregationNode)
        return (
            "a",
            node.function,
            tuple(sorted(visit(c) for c in node.operators)),
        )

    return visit(rule.root)


@dataclass(frozen=True)
class PopulationSnapshot:
    """Aggregate statistics of one generation."""

    iteration: int
    size: int
    #: Distinct rules (exact tree equality) / population size.
    unique_rule_ratio: float
    #: Distinct structural signatures / population size.
    unique_signature_ratio: float
    best_fitness: float
    mean_fitness: float
    fitness_stddev: float
    mean_operator_count: float
    mean_depth: float
    #: Distance measure -> number of rules using it at least once.
    measure_usage: tuple[tuple[str, int], ...]

    def describe(self) -> str:
        measures = ", ".join(f"{m}:{n}" for m, n in self.measure_usage[:5])
        return (
            f"iter {self.iteration}: best={self.best_fitness:.3f} "
            f"mean={self.mean_fitness:.3f}±{self.fitness_stddev:.3f} "
            f"unique={self.unique_rule_ratio:.0%} "
            f"signatures={self.unique_signature_ratio:.0%} "
            f"ops={self.mean_operator_count:.1f} [{measures}]"
        )


def snapshot_population(
    population: Sequence[LinkageRule],
    fitness: Callable[[LinkageRule], float],
    iteration: int = 0,
) -> PopulationSnapshot:
    """Summarise a population under a fitness function."""
    if not population:
        raise ValueError("population is empty")
    values = [fitness(rule) for rule in population]
    signatures = {structural_signature(rule) for rule in population}
    unique_rules = {rule.root for rule in population}
    measure_counter: Counter[str] = Counter()
    for rule in population:
        for metric in {c.metric for c in rule.comparisons()}:
            measure_counter[metric] += 1
    return PopulationSnapshot(
        iteration=iteration,
        size=len(population),
        unique_rule_ratio=len(unique_rules) / len(population),
        unique_signature_ratio=len(signatures) / len(population),
        best_fitness=max(values),
        mean_fitness=statistics.fmean(values),
        fitness_stddev=statistics.pstdev(values),
        mean_operator_count=statistics.fmean(
            rule.operator_count() for rule in population
        ),
        mean_depth=statistics.fmean(rule.depth() for rule in population),
        measure_usage=tuple(measure_counter.most_common()),
    )


class DiversityTracker:
    """A :data:`~repro.core.genlink.PopulationObserver` collecting one
    :class:`PopulationSnapshot` per iteration.

    Usage::

        tracker = DiversityTracker(fitness_fn.fitness)
        learner.learn(a, b, links, observer=tracker)
        print(tracker.render())
        if tracker.converged():
            ...
    """

    def __init__(self, fitness: Callable[[LinkageRule], float]):
        self._fitness = fitness
        self.snapshots: list[PopulationSnapshot] = []

    def __call__(self, iteration: int, population: list[LinkageRule]) -> None:
        self.snapshots.append(
            snapshot_population(population, self._fitness, iteration)
        )

    @property
    def latest(self) -> PopulationSnapshot:
        if not self.snapshots:
            raise ValueError("tracker has not observed any population yet")
        return self.snapshots[-1]

    def converged(
        self,
        window: int = 5,
        fitness_epsilon: float = 1e-6,
        signature_ratio: float = 0.05,
    ) -> bool:
        """Heuristic convergence: the best fitness has not improved by
        more than ``fitness_epsilon`` over the last ``window``
        snapshots, or structural diversity collapsed below
        ``signature_ratio``."""
        if not self.snapshots:
            return False
        if self.snapshots[-1].unique_signature_ratio <= signature_ratio:
            return True
        if len(self.snapshots) <= window:
            return False
        recent = self.snapshots[-(window + 1) :]
        return recent[-1].best_fitness - recent[0].best_fitness <= fitness_epsilon

    def stagnation_length(self, fitness_epsilon: float = 1e-6) -> int:
        """Number of trailing snapshots without best-fitness progress."""
        if not self.snapshots:
            return 0
        best = self.snapshots[-1].best_fitness
        length = 0
        for snapshot in reversed(self.snapshots):
            if best - snapshot.best_fitness > fitness_epsilon:
                break
            length += 1
        return length - 1 if length else 0

    def render(self) -> str:
        """One line per snapshot, paper-table style."""
        header = (
            f"{'iter':>4}  {'best':>7}  {'mean':>7}  {'σ':>6}  "
            f"{'uniq':>5}  {'sigs':>5}  {'ops':>5}"
        )
        lines = [header, "-" * len(header)]
        for s in self.snapshots:
            lines.append(
                f"{s.iteration:>4}  {s.best_fitness:>7.3f}  "
                f"{s.mean_fitness:>7.3f}  {s.fitness_stddev:>6.3f}  "
                f"{s.unique_rule_ratio:>5.0%}  "
                f"{s.unique_signature_ratio:>5.0%}  "
                f"{s.mean_operator_count:>5.1f}"
            )
        return "\n".join(lines)
