"""Evaluating generated link sets against reference links."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.reference_links import Link
from repro.matching.engine import GeneratedLink


@dataclass(frozen=True)
class LinkEvaluation:
    """Precision / recall / F1 of a generated link set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f_measure(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0.0 else 0.0


def evaluate_links(
    generated: Iterable[GeneratedLink | Link],
    expected_positive: Sequence[Link],
    symmetric: bool = False,
) -> LinkEvaluation:
    """Compare generated links against the full positive link set.

    ``symmetric=True`` treats (a, b) and (b, a) as the same link, which
    is appropriate for deduplication where pair order is arbitrary.
    """
    produced: set[Link] = set()
    for link in generated:
        pair = link.as_pair() if isinstance(link, GeneratedLink) else tuple(link)
        produced.add(pair)
    expected = {tuple(link) for link in expected_positive}
    if symmetric:
        produced = {tuple(sorted(pair)) for pair in produced}
        expected = {tuple(sorted(pair)) for pair in expected}
    tp = len(produced & expected)
    return LinkEvaluation(
        true_positives=tp,
        false_positives=len(produced) - tp,
        false_negatives=len(expected) - tp,
    )
