"""Link generation: evaluate a rule over candidate pairs.

This is the execution path a Silk user runs after learning: blocking
produces candidates, the rule scores them in batches and every pair at
or above the 0.5 threshold (Definition 3) becomes a link. Batches are
evaluated through one persistent :class:`repro.engine.EngineSession`
per execution, so an entity's transformed values computed in one batch
are re-used by every later batch it appears in (the seed discarded all
caches every 4096 pairs).

Batches are additionally **sharded across workers** through a
pluggable :class:`repro.engine.executor.Executor` (``workers=`` or the
``REPRO_ENGINE_WORKERS`` environment variable): a window of batches is
scored concurrently — on threads sharing the session's caches, or on a
process pool with one persistent engine session per worker process —
and results are merged back in submission order. Batch boundaries
depend only on ``batch_size`` and every shard is scored by pure
functions, so the generated links are byte-identical for every worker
count, including their order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.rule import MATCH_THRESHOLD, LinkageRule
from repro.core.nodes import SimilarityNode
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.engine.executor import Executor, resolve_executor, window_batches
from repro.engine.lru import CacheStats
from repro.engine.session import EngineSession
from repro.matching.blocking import Blocker, FullIndexBlocker, RuleBlocker


@dataclass(frozen=True)
class GeneratedLink:
    """A link produced by executing a rule."""

    uid_a: str
    uid_b: str
    score: float

    def as_pair(self) -> tuple[str, str]:
        return (self.uid_a, self.uid_b)


@dataclass(frozen=True)
class MatchStats:
    """Execution statistics of one :meth:`MatchingEngine.iter_links`
    run (available after the iterator is exhausted)."""

    batches: int
    pairs: int
    links: int
    #: Value-tier cache statistics: the shared session's snapshot on
    #: serial/thread runs, or the per-worker snapshots summed on
    #: process runs (each worker process owns a private session).
    value_stats: CacheStats | None


#: One engine session per worker process, lazily created and reused
#: across shards so a worker's transformed-value cache persists for the
#: whole execution (the process-pool analogue of the shared session).
_WORKER_SESSION: EngineSession | None = None


def _shard_scores(
    payload: tuple[SimilarityNode, list[tuple[Entity, Entity]]],
) -> tuple[int, np.ndarray, CacheStats]:
    """Score one candidate-pair shard inside a worker process.

    Module-level so process pools can pickle it. The worker session is
    explicitly serial — nesting a thread pool per worker process would
    oversubscribe the machine without changing any result.
    """
    global _WORKER_SESSION
    root, pairs = payload
    if _WORKER_SESSION is None:
        _WORKER_SESSION = EngineSession(executor=0)
    context = _WORKER_SESSION.context(pairs)
    try:
        scores = context.scores(root)
    finally:
        _WORKER_SESSION.release_context(context)
    return os.getpid(), scores, _WORKER_SESSION.stats().values


def _sum_cache_stats(snapshots: Sequence[CacheStats]) -> CacheStats | None:
    """Merge per-worker cache snapshots by summation (capacities too:
    the merged view describes the fleet, not one worker)."""
    if not snapshots:
        return None
    return CacheStats(
        hits=sum(s.hits for s in snapshots),
        misses=sum(s.misses for s in snapshots),
        evictions=sum(s.evictions for s in snapshots),
        size=sum(s.size for s in snapshots),
        capacity=sum(s.capacity for s in snapshots),
    )


class MatchingEngine:
    """Executes linkage rules over data sources."""

    def __init__(
        self,
        blocker: Blocker | None = None,
        batch_size: int = 4096,
        threshold: float = MATCH_THRESHOLD,
        session: EngineSession | None = None,
        workers: Executor | int | str | None = None,
    ):
        """``blocker=None`` selects rule-aware blocking per executed
        rule, falling back to the full index for rules without
        property comparisons. ``session=None`` creates a fresh engine
        session per :meth:`iter_links` call (caches persist across the
        batches of one execution but cannot go stale across data
        sources); pass a session explicitly to share caches across
        executions. ``workers`` selects the sharding executor (see
        :func:`repro.engine.executor.resolve_executor`); ``None``
        consults ``REPRO_ENGINE_WORKERS``. A process-pool executor
        requires the default registries (worker processes build their
        own sessions) and therefore rejects an explicit ``session``."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._blocker = blocker
        self._batch_size = batch_size
        self._threshold = threshold
        self._session = session
        self._executor = resolve_executor(workers)
        if self._executor.kind == "process" and session is not None:
            raise ValueError(
                "process-pool sharding cannot share an in-process engine "
                "session; drop the session= argument or use thread workers"
            )
        self._last_stats: MatchStats | None = None

    @property
    def executor(self) -> Executor:
        """The sharding executor of this engine."""
        return self._executor

    def last_run_stats(self) -> MatchStats | None:
        """Statistics of the most recently *completed* run (None before
        the first run; a partially consumed :meth:`iter_links` iterator
        does not update this)."""
        return self._last_stats

    def close(self) -> None:
        """Release pooled executor workers. Usable as a context
        manager."""
        self._executor.close()

    def __enter__(self) -> "MatchingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _resolve_blocker(self, rule: LinkageRule) -> Blocker:
        if self._blocker is not None:
            return self._blocker
        try:
            return RuleBlocker(rule)
        except ValueError:
            return FullIndexBlocker()

    def execute(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
    ) -> list[GeneratedLink]:
        """All links the rule generates between the two sources,
        sorted by descending score."""
        links = list(self.iter_links(rule, source_a, source_b))
        links.sort(key=lambda link: (-link.score, link.uid_a, link.uid_b))
        return links

    def iter_links(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
    ) -> Iterator[GeneratedLink]:
        """Stream links batch by batch (memory-bounded).

        With a parallel executor, a window of ``workers`` batches is in
        flight at a time; links are always emitted in batch order, then
        pair order within a batch — the same order the serial engine
        produces, whatever the worker count.
        """
        blocker = self._resolve_blocker(rule)
        executor = self._executor
        session = self._session if self._session is not None else EngineSession()
        window = max(1, executor.workers)
        batches = pairs = links = 0
        worker_values: dict[int, CacheStats] = {}
        for group in window_batches(
            self._iter_batches(blocker, source_a, source_b), window
        ):
            if executor.kind == "process":
                results = executor.map(
                    _shard_scores, [(rule.root, batch) for batch in group]
                )
                score_vectors = []
                for pid, scores, value_stats in results:
                    worker_values[pid] = value_stats
                    score_vectors.append(scores)
            else:
                score_vectors = executor.map(
                    lambda batch: self._batch_scores(session, rule, batch),
                    group,
                )
            # Sort-stable merge: groups arrive in stream order and
            # map preserves submission order within a group, so plain
            # concatenation reproduces the serial emission order.
            for batch, scores in zip(group, score_vectors):
                batches += 1
                pairs += len(batch)
                for (entity_a, entity_b), score in zip(batch, scores):
                    if score >= self._threshold:
                        links += 1
                        yield GeneratedLink(
                            entity_a.uid, entity_b.uid, float(score)
                        )
        if executor.kind == "process":
            value_stats = _sum_cache_stats(list(worker_values.values()))
        else:
            value_stats = session.stats().values
        self._last_stats = MatchStats(
            batches=batches, pairs=pairs, links=links, value_stats=value_stats
        )

    def _iter_batches(
        self,
        blocker: Blocker,
        source_a: DataSource,
        source_b: DataSource,
    ) -> Iterator[list[tuple[Entity, Entity]]]:
        batch: list[tuple[Entity, Entity]] = []
        for pair in blocker.candidates(source_a, source_b):
            batch.append(pair)
            if len(batch) >= self._batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def _batch_scores(
        self,
        session: EngineSession,
        rule: LinkageRule,
        batch: list[tuple[Entity, Entity]],
    ) -> np.ndarray:
        """Score one batch through the shared session (serial and
        thread paths; thread-safe via the session's locked caches)."""
        context = session.context(batch)
        try:
            return context.scores(rule.root)
        finally:
            # Column/score vectors are batch-local; evict them so long
            # streams don't pin dead arrays until capacity eviction.
            # (Value-tier entries persist — that's the cross-batch win.)
            session.release_context(context)


def generate_links(
    rule: LinkageRule,
    source_a: DataSource,
    source_b: DataSource,
    blocker: Blocker | None = None,
    workers: Executor | int | str | None = None,
) -> list[GeneratedLink]:
    """Convenience wrapper around :class:`MatchingEngine`."""
    engine = MatchingEngine(blocker=blocker, workers=workers)
    try:
        return engine.execute(rule, source_a, source_b)
    finally:
        engine.close()
