"""Link generation: evaluate a rule over candidate pairs.

This is the execution path a Silk user runs after learning: blocking
produces candidates, the rule scores them in batches and every pair at
or above the 0.5 threshold (Definition 3) becomes a link. Batches are
evaluated through one persistent :class:`repro.engine.EngineSession`
per execution, so an entity's transformed values computed in one batch
are re-used by every later batch it appears in (the seed discarded all
caches every 4096 pairs).

Batches are additionally **sharded across workers** through a
pluggable :class:`repro.engine.executor.Executor` (``workers=`` or the
``REPRO_ENGINE_WORKERS`` environment variable): a window of batches
(``window=``, default 2x the worker count) is scored concurrently — on
threads sharing the session's caches, or on a process pool with one
persistent engine session per worker process — and results are merged
back in submission order. Candidate shards come straight from the
blocker (:meth:`repro.matching.blocking.Blocker.iter_shards`) over the
run's session, so blocking-index construction shares the executor, the
value cache and the persistent store's index tier. Batch boundaries
depend only on ``batch_size`` and every shard is scored by pure
functions, so the generated links are byte-identical for every worker
count, including their order.

The default blocker is rule-structure-aware (:func:`default_blocker`):
MultiBlock where the rule's comparisons support a dismissal-free
index, token blocking on the compared properties otherwise, gated by
``benchmarks/bench_multiblock.py`` asserting MultiBlock executions
generate exactly the full-index links on every bundled dataset.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Iterator

import numpy as np

from repro import faults
from repro.core.rule import MATCH_THRESHOLD, LinkageRule
from repro.core.nodes import SimilarityNode
from repro.faults import CancelToken
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.distances.strings import routing_delta, routing_merged
from repro.engine.executor import Executor, resolve_executor
from repro.engine.lru import CacheStats
from repro.engine.session import EngineSession, EngineStats
from repro.engine.store import ColumnStore, StoreStats
from repro.matching.blocking import Blocker, FullIndexBlocker, RuleBlocker
from repro.matching.multiblock import MultiBlocker, multiblock_supports

#: Environment variable selecting the default blocking strategy when an
#: engine is constructed without an explicit ``blocker`` (values:
#: ``auto`` — structure-aware selection, the default — ``multiblock``,
#: ``rule``, ``full``).
BLOCKER_ENV = "REPRO_ENGINE_BLOCKER"


def default_blocker(
    rule: LinkageRule,
    spec: str = "auto",
    session: "EngineSession | None" = None,
) -> Blocker:
    """The blocker an engine uses when none is configured explicitly.

    ``auto`` picks :class:`~repro.matching.multiblock.MultiBlocker`
    when the rule's comparison structure supports a selective,
    dismissal-free index (:func:`~repro.matching.multiblock.
    multiblock_supports` — gated on the ``bench_multiblock`` recall/
    reduction benchmark across the bundled datasets), falling back to
    token blocking on the compared properties
    (:class:`~repro.matching.blocking.RuleBlocker`) and, for rules
    without property comparisons, the full index. ``session`` binds
    MultiBlock index construction to the engine's caches and
    persistent index tier.
    """
    text = spec.strip().lower() or "auto"
    if text == "full":
        return FullIndexBlocker()
    if text not in ("auto", "multiblock", "rule"):
        raise ValueError(
            f"invalid blocker spec {spec!r}: expected auto, multiblock, "
            f"rule or full"
        )
    if text == "multiblock" or (text == "auto" and multiblock_supports(rule)):
        return MultiBlocker(rule, session=session)
    try:
        return RuleBlocker(rule)
    except ValueError:
        return FullIndexBlocker()


@dataclass(frozen=True)
class GeneratedLink:
    """A link produced by executing a rule."""

    uid_a: str
    uid_b: str
    score: float

    def as_pair(self) -> tuple[str, str]:
        return (self.uid_a, self.uid_b)


@dataclass(frozen=True)
class MatchStats:
    """Execution statistics of one :meth:`MatchingEngine.iter_links`
    run (available after the iterator is exhausted).

    The four cache tiers are reported separately — in-memory values /
    columns / scores plus the persistent column store — so consumers
    (CI assertions, docs, tuning scripts) can tell a cross-run store
    hit from an in-memory hit unambiguously. Counters are **per run**:
    sessions (and process-pool worker sessions) outlive individual
    runs, so the engine snapshots their statistics at run start and
    reports the delta — a warm rerun on a shared session really shows
    ``store.misses == 0``, not the cold run's misses folded in.
    ``size``/``capacity`` remain point-in-time gauges. On serial/thread
    runs the snapshots come from the shared session; on process runs
    they are the per-worker snapshots merged (each worker owns a
    private session).
    """

    batches: int
    pairs: int
    links: int
    values: CacheStats | None
    columns: CacheStats | None
    scores: CacheStats | None
    #: Persistent-tier counters; None when no cache dir is configured.
    #: Covers both store tiers: distance columns (``hits``/``misses``/
    #: ``writes``) and blocking indexes (``index_hits``/
    #: ``index_misses``/``index_writes``) — a warm rerun that skipped
    #: index construction shows ``index_misses == 0`` here.
    store: StoreStats | None
    #: Probe-side counters (blocking's batch probe path, reported
    #: alongside the ``index_*`` build-side counters): batch-probe
    #: invocations this run, and probe results served from the
    #: distinct-value-tuple memo instead of fresh key derivation.
    probe_batches: int = 0
    probe_memo_hits: int = 0
    #: Per-measure kernel routing this run: sorted ``(measure,
    #: batch_pairs, fallback_pairs)`` triples — non-empty pairs scored
    #: by a vectorized batch kernel vs the per-pair scalar fallback
    #: (cache and store hits count toward neither). Plain tuples so the
    #: stats pickle cleanly out of process-pool workers.
    kernel_routing: tuple[tuple[str, int, int], ...] = ()
    #: In-flight shard window depth the run finished with. Equals the
    #: ``window=`` override when one is set; otherwise starts at 2x the
    #: worker count and adapts to measured shard-time variance (up to
    #: 4x the base — skewed shard runtimes need a deeper window to keep
    #: the pool busy).
    window_depth: int = 0
    #: Blocking-index construction this run: payloads built from
    #: scratch vs payloads patched forward from a persisted ancestor
    #: epoch (the incremental path's reuse signal).
    index_builds: int = 0
    index_patches: int = 0
    #: Degradations recorded during this run: human-readable reasons
    #: the persistent store's circuit breaker tripped (union across
    #: worker sessions on process pools, sorted and deduplicated).
    #: Empty on healthy runs; the service copies this into job stats
    #: and health reports.
    degraded: tuple[str, ...] = ()

    @property
    def value_stats(self) -> CacheStats | None:
        """Backward-compatible alias for the value tier."""
        return self.values


@dataclass(frozen=True)
class LinkDiff:
    """Result of one incremental :meth:`MatchingEngine.link_diff` run.

    ``links`` is the complete, sorted link set of the *current* source
    epochs — byte-identical to a cold :meth:`MatchingEngine.execute`
    over the same data. The diff buckets compare exact
    :class:`GeneratedLink` values against ``previous_links``: a pair
    whose score changed appears in ``added`` (new version) *and*
    ``removed`` (old version); ``unchanged`` holds links equal in pair
    and score.
    """

    #: Links in the new set that were not in the previous set.
    added: tuple[GeneratedLink, ...]
    #: Previous links absent from the new set.
    removed: tuple[GeneratedLink, ...]
    #: Links identical (pair and score) in both sets.
    unchanged: tuple[GeneratedLink, ...]
    #: The full new link set, sorted by (-score, uid_a, uid_b).
    links: tuple[GeneratedLink, ...]
    #: Probe-side uids that were rescored (changed uids included);
    #: None when the blocker could not bound the impact and the run
    #: fell back to a full rescore.
    affected_uids: frozenset | None
    #: Candidate pairs actually scored this run.
    rescored_pairs: int
    #: Previous links carried over without rescoring.
    kept_links: int
    #: Statistics of the scoring pass (the full-rescore fallback
    #: reports its complete run here).
    stats: MatchStats | None


#: One engine session per worker process, lazily created and reused
#: across shards so a worker's transformed-value cache persists for the
#: whole execution (the process-pool analogue of the shared session).
_WORKER_SESSION: EngineSession | None = None
#: Cache-dir spec the worker session was created with; a different
#: spec (engine reconfigured between runs) recreates the session.
_WORKER_CACHE_DIR: str | None = None


def _shard_scores(
    payload: tuple[SimilarityNode, list[tuple[Entity, Entity]], str | None],
) -> tuple[int, np.ndarray, EngineStats, float]:
    """Score one candidate-pair shard inside a worker process.

    Module-level so process pools can pickle it. The worker session is
    explicitly serial — nesting a thread pool per worker process would
    oversubscribe the machine without changing any result. The payload
    carries the persistent cache dir (None = consult the environment):
    worker processes share the same on-disk store as the parent —
    atomic-rename writes make concurrent writers safe. The wall-clock
    duration of the shard rides along for the parent's adaptive
    window sizing.
    """
    global _WORKER_SESSION, _WORKER_CACHE_DIR
    root, pairs, cache_dir = payload
    if _WORKER_SESSION is None or _WORKER_CACHE_DIR != cache_dir:
        _WORKER_SESSION = EngineSession(executor=0, store=cache_dir)
        _WORKER_CACHE_DIR = cache_dir
    started = time.perf_counter()
    context = _WORKER_SESSION.context(pairs)
    try:
        scores = context.scores(root)
    finally:
        _WORKER_SESSION.release_context(context)
    duration = time.perf_counter() - started
    return os.getpid(), scores, _WORKER_SESSION.stats(), duration


class _RunState:
    """Mutable per-run scoring state: the in-flight shard window depth
    (adapted from measured shard durations when no ``window=`` override
    pins it) plus the worker-session snapshots a process-pool run
    reports from.

    The adaptive rule: uniform shard times need no slack beyond the
    2x-workers base, but high variance drains the pool while the long
    shard finishes — so the depth grows with the coefficient of
    variation of recent shard durations, clamped to [base, 4x base].
    """

    __slots__ = ("base", "adaptive", "depth", "max_depth", "durations", "worker_stats")

    def __init__(self, base: int, adaptive: bool):
        self.base = base
        self.adaptive = adaptive
        self.depth = base
        self.max_depth = base * 4
        self.durations: list[float] = []
        self.worker_stats: dict[int, EngineStats] = {}

    def adapt(self) -> None:
        if not self.adaptive:
            return
        recent = self.durations[-16:]
        if len(recent) < 4:
            return
        mean = sum(recent) / len(recent)
        if mean <= 0.0:
            return
        variance = sum((d - mean) ** 2 for d in recent) / len(recent)
        cv = variance**0.5 / mean
        target = round(self.base * (1.0 + 2.0 * cv))
        self.depth = max(self.base, min(self.max_depth, target))


class MatchingEngine:
    """Executes linkage rules over data sources."""

    def __init__(
        self,
        blocker: Blocker | None = None,
        batch_size: int = 4096,
        threshold: float = MATCH_THRESHOLD,
        session: EngineSession | None = None,
        workers: Executor | int | str | None = None,
        cache_dir: "ColumnStore | str | None" = None,
        window: int | None = None,
    ):
        """``blocker=None`` selects rule-aware blocking per executed
        rule (:func:`default_blocker`; ``REPRO_ENGINE_BLOCKER``
        overrides the ``auto`` strategy), falling back to the full
        index for rules without property comparisons. ``window``
        bounds how many shards are in flight at once: ``None`` keeps
        2x the worker count (deeper than the workers themselves, so
        skewed shard runtimes don't drain the pool); larger windows
        hide more shard-size variance at proportionally more resident
        pair memory. ``session=None`` creates a fresh engine
        session per :meth:`iter_links` call (caches persist across the
        batches of one execution but cannot go stale across data
        sources); pass a session explicitly to share caches across
        executions. ``workers`` selects the sharding executor (see
        :func:`repro.engine.executor.resolve_executor`); ``None``
        consults ``REPRO_ENGINE_WORKERS``. A process-pool executor
        requires the default registries (worker processes build their
        own sessions) and therefore rejects an explicit ``session``.

        ``cache_dir`` enables the persistent distance-column store for
        the sessions this engine creates (a path, a
        :class:`~repro.engine.store.ColumnStore`, or ``None`` to
        consult ``REPRO_ENGINE_CACHE``; ``""`` forces it off). A warm
        rerun over unchanged sources then loads every distance column
        from disk instead of rebuilding it — links are byte-identical
        either way. An explicit ``session`` owns its own store and
        rejects ``cache_dir``."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        self._blocker = blocker
        self._batch_size = batch_size
        self._threshold = threshold
        self._session = session
        self._window = window
        self._executor = resolve_executor(workers)
        if self._executor.kind == "process" and session is not None:
            raise ValueError(
                "process-pool sharding cannot share an in-process engine "
                "session; drop the session= argument or use thread workers"
            )
        if session is not None and cache_dir is not None:
            raise ValueError(
                "the persistent store is owned by the session; configure "
                "store= on EngineSession instead of cache_dir="
            )
        self._cache_dir = cache_dir
        #: Parent-side session of process-pool runs: blocking indexes
        #: are built (and persisted) in the parent even though scoring
        #: happens in worker sessions. Lazily created, persists across
        #: runs so repeated executions reuse in-memory indexes.
        self._process_parent_session: EngineSession | None = None
        self._last_stats: MatchStats | None = None
        #: Per-worker-process snapshots at the end of the previous run,
        #: keyed by pid — worker sessions persist across the runs of
        #: one engine, so per-run stats are deltas against these.
        self._worker_baselines: dict[int, EngineStats] = {}

    @property
    def executor(self) -> Executor:
        """The sharding executor of this engine."""
        return self._executor

    @property
    def window(self) -> int:
        """Shards kept in flight per scheduling round (resolved)."""
        if self._window is not None:
            return self._window
        return max(1, 2 * self._executor.workers)

    def last_run_stats(self) -> MatchStats | None:
        """Statistics of the most recently *completed* run (None before
        the first run; a partially consumed :meth:`iter_links` iterator
        does not update this)."""
        return self._last_stats

    def close(self) -> None:
        """Release pooled executor workers (including the blocking
        parent session's, on process-pool engines). Usable as a
        context manager."""
        self._executor.close()
        if self._process_parent_session is not None:
            self._process_parent_session.close()

    def __enter__(self) -> "MatchingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _resolve_blocker(
        self, rule: LinkageRule, session: EngineSession
    ) -> Blocker:
        if self._blocker is not None:
            return self._blocker
        spec = os.environ.get(BLOCKER_ENV, "")
        return default_blocker(rule, spec, session=session)

    def execute(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
        cancel: CancelToken | None = None,
    ) -> list[GeneratedLink]:
        """All links the rule generates between the two sources,
        sorted by descending score."""
        links = list(self.iter_links(rule, source_a, source_b, cancel=cancel))
        links.sort(key=lambda link: (-link.score, link.uid_a, link.uid_b))
        return links

    def iter_links(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
        cancel: CancelToken | None = None,
    ) -> Iterator[GeneratedLink]:
        """Stream links batch by batch (memory-bounded).

        With a parallel executor, a window of shards (default 2x the
        worker count, ``window=``) is in flight at a time; links are
        always emitted in batch order, then pair order within a batch —
        the same order the serial engine produces, whatever the worker
        count.

        Candidate shards come straight from the blocker
        (:meth:`~repro.matching.blocking.Blocker.iter_shards`) — no
        re-chunking layer — and the blocker shares the run's engine
        session, so its index construction goes through the session
        executor, the value cache and (when configured) the persistent
        store's index tier. On process pools, scoring runs in
        per-worker sessions while blocking indexes are built in a
        parent-side session that persists across the engine's runs.

        ``cancel`` enables cooperative cancellation: the token is
        checked at every shard-group boundary (the engine's natural
        preemption points — nothing is interrupted mid-kernel), so a
        deadline or an operator cancel raises
        :class:`~repro.faults.Cancelled` between groups and the
        session/store are left in the same consistent state any other
        failure would leave them in.
        """
        session = self._run_session()
        baseline = session.stats()
        blocker = self._resolve_blocker(rule, session)
        state = self._run_state()
        batches = pairs = links = 0
        shards = blocker.iter_shards(
            source_a, source_b, self._batch_size, session=session
        )
        for batch, scores in self._scored_batches(
            session, rule, shards, state, cancel=cancel
        ):
            batches += 1
            pairs += len(batch)
            for (entity_a, entity_b), score in zip(batch, scores):
                if score >= self._threshold:
                    links += 1
                    yield GeneratedLink(entity_a.uid, entity_b.uid, float(score))
        self._last_stats = self._finish_stats(
            session, baseline, state, batches, pairs, links
        )

    def link_diff(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
        previous_links: "Iterable[GeneratedLink]",
        deltas_a: "Iterable" = (),
        deltas_b: "Iterable" = (),
        cancel: CancelToken | None = None,
    ) -> LinkDiff:
        """Incrementally re-derive the link set after source deltas.

        ``previous_links`` is the link set generated over the *parent*
        epochs (before ``deltas_a``/``deltas_b``, typically
        ``DataSource.delta_chain()`` of each side; for deduplication
        runs passing one side's chain is enough). The blocker bounds
        which probe entities' candidate sets can have changed
        (:meth:`~repro.matching.blocking.Blocker.affected_probe_uids`);
        links not touching that set carry over unscored, and only the
        affected candidate pairs re-score — against the patched
        persisted indexes and the probe-result ledger, so the work is
        proportional to the delta, not the source. The resulting
        ``links`` are byte-identical to a cold
        :meth:`execute` over the current sources; when the blocker
        cannot bound the impact the run *is* a cold execute
        (``affected_uids is None``).
        """
        previous = list(previous_links)
        deltas_a = tuple(deltas_a)
        deltas_b = tuple(deltas_b)
        if source_a is source_b and (bool(deltas_a) != bool(deltas_b)):
            deltas_a = deltas_b = deltas_a or deltas_b
        session = self._run_session()
        baseline = session.stats()
        blocker = self._resolve_blocker(rule, session)
        changed: set[str] = set()
        chains = (
            (deltas_a,) if source_a is source_b else (deltas_a, deltas_b)
        )
        for chain in chains:
            for delta in chain:
                changed |= delta.changed_uids
        if deltas_a or deltas_b:
            affected = blocker.affected_probe_uids(
                source_a, source_b, deltas_a, deltas_b, session=session
            )
        else:
            affected = frozenset()
        if affected is None:
            links = list(self.execute(rule, source_a, source_b, cancel=cancel))
            stats = self._last_stats
            aff = None
            kept: list[GeneratedLink] = []
            rescored_pairs = stats.pairs if stats is not None else 0
        else:
            aff = frozenset(affected) | changed
            kept = [
                link
                for link in previous
                if link.uid_a not in aff and link.uid_b not in aff
            ]
            state = self._run_state()
            batches = pairs = 0
            rescored: list[GeneratedLink] = []
            shards = blocker.iter_affected_shards(
                source_a, source_b, aff, self._batch_size, session=session
            )
            for batch, scores in self._scored_batches(
                session, rule, shards, state, cancel=cancel
            ):
                batches += 1
                pairs += len(batch)
                for (entity_a, entity_b), score in zip(batch, scores):
                    if score >= self._threshold:
                        rescored.append(
                            GeneratedLink(
                                entity_a.uid, entity_b.uid, float(score)
                            )
                        )
            links = kept + rescored
            links.sort(key=lambda link: (-link.score, link.uid_a, link.uid_b))
            rescored_pairs = pairs
            stats = self._finish_stats(
                session, baseline, state, batches, pairs, len(links)
            )
            self._last_stats = stats
        prev_by_pair = {link.as_pair(): link for link in previous}
        new_by_pair = {link.as_pair(): link for link in links}
        return LinkDiff(
            added=tuple(
                link for link in links if prev_by_pair.get(link.as_pair()) != link
            ),
            removed=tuple(
                link
                for link in previous
                if new_by_pair.get(link.as_pair()) != link
            ),
            unchanged=tuple(
                link for link in links if prev_by_pair.get(link.as_pair()) == link
            ),
            links=tuple(links),
            affected_uids=aff,
            rescored_pairs=rescored_pairs,
            kept_links=len(kept),
            stats=stats,
        )

    def iter_link_diff(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
        previous_links: "Iterable[GeneratedLink]",
        deltas_a: "Iterable" = (),
        deltas_b: "Iterable" = (),
    ) -> Iterator[tuple[str, GeneratedLink]]:
        """Streaming view of :meth:`link_diff`: yields ``(kind, link)``
        with kind in ``{"added", "removed", "unchanged"}`` (removed
        links carry their previous score)."""
        diff = self.link_diff(
            rule,
            source_a,
            source_b,
            previous_links,
            deltas_a=deltas_a,
            deltas_b=deltas_b,
        )
        for link in diff.added:
            yield "added", link
        for link in diff.removed:
            yield "removed", link
        for link in diff.unchanged:
            yield "unchanged", link

    def _run_session(self) -> EngineSession:
        """The session one run's candidate generation uses. Process
        pools score in per-worker sessions, but blocking is parent-side
        work — it gets a persistent parent session sharing the same
        on-disk store."""
        if self._executor.kind != "process":
            if self._session is not None:
                return self._session
            return EngineSession(store=self._cache_dir)
        if self._process_parent_session is None:
            self._process_parent_session = EngineSession(store=self._cache_dir)
        return self._process_parent_session

    def _run_state(self) -> _RunState:
        return _RunState(
            base=self.window,
            adaptive=self._window is None and self._executor.workers > 1,
        )

    def _scored_batches(
        self,
        session: EngineSession,
        rule: LinkageRule,
        shards,
        state: _RunState,
        cancel: CancelToken | None = None,
    ) -> Iterator[tuple[list[tuple[Entity, Entity]], np.ndarray]]:
        """Score a shard stream across the executor, yielding
        ``(batch, score_vector)`` in stream order — groups of
        ``state.depth`` shards are in flight at a time, map preserves
        submission order within a group, so concatenation reproduces
        the serial emission order whatever the worker count. Shard
        durations feed the adaptive window between groups.

        Each group boundary is both a cancellation point
        (``cancel.check()``) and the ``engine.shard`` fault-injection
        seam — together they bound how long a hung or doomed run can
        keep computing to one in-flight group."""
        executor = self._executor
        shard_cache_dir = self._shard_cache_dir()
        stream = iter(shards)
        while True:
            if cancel is not None:
                cancel.check()
            faults.fire("engine.shard")
            group = list(islice(stream, state.depth))
            if not group:
                return
            if executor.kind == "process":
                results = executor.map(
                    _shard_scores,
                    [(rule.root, batch, shard_cache_dir) for batch in group],
                )
                score_vectors = []
                for pid, scores, engine_stats, duration in results:
                    state.worker_stats[pid] = engine_stats
                    state.durations.append(duration)
                    score_vectors.append(scores)
            else:

                def timed(batch):
                    started = time.perf_counter()
                    scores = self._batch_scores(session, rule, batch)
                    return scores, time.perf_counter() - started

                score_vectors = []
                for scores, duration in executor.map(timed, group):
                    state.durations.append(duration)
                    score_vectors.append(scores)
            state.adapt()
            yield from zip(group, score_vectors)

    def _finish_stats(
        self,
        session: EngineSession,
        baseline: EngineStats,
        state: _RunState,
        batches: int,
        pairs: int,
        links: int,
    ) -> MatchStats:
        if self._executor.kind == "process":
            # Worker deltas plus the parent blocking session's delta:
            # index-tier traffic (and MultiBlock value transformations)
            # happen parent-side and would otherwise vanish from the
            # per-run report.
            parent = session.stats()
            deltas = [
                (snapshot, self._worker_baselines.get(pid))
                for pid, snapshot in state.worker_stats.items()
            ] + [(parent, baseline)]
            values = CacheStats.merged(
                [s.values.delta(b.values if b else None) for s, b in deltas]
            )
            columns = CacheStats.merged(
                [s.columns.delta(b.columns if b else None) for s, b in deltas]
            )
            scores_stats = CacheStats.merged(
                [s.scores.delta(b.scores if b else None) for s, b in deltas]
            )
            store_stats = StoreStats.merged(
                [
                    s.store.delta(b.store if b is not None else None)
                    for s, b in deltas
                    if s.store is not None
                ]
            )
            # Probing is parent-side work (workers only score), but sum
            # every delta so the report stays correct if that changes.
            probe_batches = sum(
                s.probe_batches - (b.probe_batches if b else 0)
                for s, b in deltas
            )
            probe_memo_hits = sum(
                s.probe_memo_hits - (b.probe_memo_hits if b else 0)
                for s, b in deltas
            )
            index_builds = sum(
                s.index_builds - (b.index_builds if b else 0)
                for s, b in deltas
            )
            index_patches = sum(
                s.index_patches - (b.index_patches if b else 0)
                for s, b in deltas
            )
            kernel_routing = routing_merged(
                [
                    routing_delta(s.kernel_routing, b.kernel_routing if b else None)
                    for s, b in deltas
                ]
            )
            # Trip reasons are monotonic per session: this run's
            # degradations are whatever each session appended past its
            # baseline, deduplicated across workers.
            degraded = tuple(
                sorted(
                    {
                        reason
                        for s, b in deltas
                        for reason in s.degraded[len(b.degraded) if b else 0 :]
                    }
                )
            )
            self._worker_baselines.update(state.worker_stats)
        else:
            stats = session.stats()
            values = stats.values.delta(baseline.values)
            columns = stats.columns.delta(baseline.columns)
            scores_stats = stats.scores.delta(baseline.scores)
            store_stats = (
                stats.store.delta(baseline.store)
                if stats.store is not None
                else None
            )
            probe_batches = stats.probe_batches - baseline.probe_batches
            probe_memo_hits = stats.probe_memo_hits - baseline.probe_memo_hits
            index_builds = stats.index_builds - baseline.index_builds
            index_patches = stats.index_patches - baseline.index_patches
            kernel_routing = routing_delta(
                stats.kernel_routing, baseline.kernel_routing
            )
            degraded = tuple(
                sorted(set(stats.degraded[len(baseline.degraded) :]))
            )
        return MatchStats(
            batches=batches,
            pairs=pairs,
            links=links,
            values=values,
            columns=columns,
            scores=scores_stats,
            store=store_stats,
            probe_batches=probe_batches,
            probe_memo_hits=probe_memo_hits,
            kernel_routing=kernel_routing,
            window_depth=state.depth,
            index_builds=index_builds,
            index_patches=index_patches,
            degraded=degraded,
        )

    def _shard_cache_dir(self) -> str | None:
        """The cache-dir spec shipped to process-pool shard workers
        (workers resolve their own store; None = consult the
        environment, as the parent would)."""
        if isinstance(self._cache_dir, ColumnStore):
            return str(self._cache_dir.root)
        return self._cache_dir

    def _batch_scores(
        self,
        session: EngineSession,
        rule: LinkageRule,
        batch: list[tuple[Entity, Entity]],
    ) -> np.ndarray:
        """Score one batch through the shared session (serial and
        thread paths; thread-safe via the session's locked caches)."""
        context = session.context(batch)
        try:
            return context.scores(rule.root)
        finally:
            # Column/score vectors are batch-local; evict them so long
            # streams don't pin dead arrays until capacity eviction.
            # (Value-tier entries persist — that's the cross-batch win.)
            session.release_context(context)


def generate_links(
    rule: LinkageRule,
    source_a: DataSource,
    source_b: DataSource,
    blocker: Blocker | None = None,
    workers: Executor | int | str | None = None,
    cache_dir: "ColumnStore | str | None" = None,
) -> list[GeneratedLink]:
    """Convenience wrapper around :class:`MatchingEngine`."""
    engine = MatchingEngine(blocker=blocker, workers=workers, cache_dir=cache_dir)
    try:
        return engine.execute(rule, source_a, source_b)
    finally:
        engine.close()
