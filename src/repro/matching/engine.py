"""Link generation: evaluate a rule over candidate pairs.

This is the execution path a Silk user runs after learning: blocking
produces candidates, the rule scores them in batches and every pair at
or above the 0.5 threshold (Definition 3) becomes a link. Batches are
evaluated through one persistent :class:`repro.engine.EngineSession`
per execution, so an entity's transformed values computed in one batch
are re-used by every later batch it appears in (the seed discarded all
caches every 4096 pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.rule import MATCH_THRESHOLD, LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.engine.session import EngineSession
from repro.matching.blocking import Blocker, FullIndexBlocker, RuleBlocker


@dataclass(frozen=True)
class GeneratedLink:
    """A link produced by executing a rule."""

    uid_a: str
    uid_b: str
    score: float

    def as_pair(self) -> tuple[str, str]:
        return (self.uid_a, self.uid_b)


class MatchingEngine:
    """Executes linkage rules over data sources."""

    def __init__(
        self,
        blocker: Blocker | None = None,
        batch_size: int = 4096,
        threshold: float = MATCH_THRESHOLD,
        session: EngineSession | None = None,
    ):
        """``blocker=None`` selects rule-aware blocking per executed
        rule, falling back to the full index for rules without
        property comparisons. ``session=None`` creates a fresh engine
        session per :meth:`iter_links` call (caches persist across the
        batches of one execution but cannot go stale across data
        sources); pass a session explicitly to share caches across
        executions over the same sources."""
        self._blocker = blocker
        self._batch_size = batch_size
        self._threshold = threshold
        self._session = session

    def _resolve_blocker(self, rule: LinkageRule) -> Blocker:
        if self._blocker is not None:
            return self._blocker
        try:
            return RuleBlocker(rule)
        except ValueError:
            return FullIndexBlocker()

    def execute(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
    ) -> list[GeneratedLink]:
        """All links the rule generates between the two sources,
        sorted by descending score."""
        links = list(self.iter_links(rule, source_a, source_b))
        links.sort(key=lambda link: (-link.score, link.uid_a, link.uid_b))
        return links

    def iter_links(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
    ) -> Iterator[GeneratedLink]:
        """Stream links batch by batch (memory-bounded)."""
        blocker = self._resolve_blocker(rule)
        session = self._session if self._session is not None else EngineSession()
        batch: list[tuple[Entity, Entity]] = []
        for pair in blocker.candidates(source_a, source_b):
            batch.append(pair)
            if len(batch) >= self._batch_size:
                yield from self._evaluate_batch(session, rule, batch)
                batch = []
        if batch:
            yield from self._evaluate_batch(session, rule, batch)

    def _evaluate_batch(
        self,
        session: EngineSession,
        rule: LinkageRule,
        batch: list[tuple[Entity, Entity]],
    ) -> Iterator[GeneratedLink]:
        context = session.context(batch)
        try:
            scores = context.scores(rule.root)
        finally:
            # Column/score vectors are batch-local; evict them so long
            # streams don't pin dead arrays until capacity eviction.
            # (Value-tier entries persist — that's the cross-batch win.)
            session.release_context(context)
        for (entity_a, entity_b), score in zip(batch, scores):
            if score >= self._threshold:
                yield GeneratedLink(entity_a.uid, entity_b.uid, float(score))


def generate_links(
    rule: LinkageRule,
    source_a: DataSource,
    source_b: DataSource,
    blocker: Blocker | None = None,
) -> list[GeneratedLink]:
    """Convenience wrapper around :class:`MatchingEngine`."""
    return MatchingEngine(blocker=blocker).execute(rule, source_a, source_b)
