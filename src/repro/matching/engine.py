"""Link generation: evaluate a rule over candidate pairs.

This is the execution path a Silk user runs after learning: blocking
produces candidates, the rule scores them in batches and every pair at
or above the 0.5 threshold (Definition 3) becomes a link. Batches are
evaluated through one persistent :class:`repro.engine.EngineSession`
per execution, so an entity's transformed values computed in one batch
are re-used by every later batch it appears in (the seed discarded all
caches every 4096 pairs).

Batches are additionally **sharded across workers** through a
pluggable :class:`repro.engine.executor.Executor` (``workers=`` or the
``REPRO_ENGINE_WORKERS`` environment variable): a window of batches
(``window=``, default 2x the worker count) is scored concurrently — on
threads sharing the session's caches, or on a process pool with one
persistent engine session per worker process — and results are merged
back in submission order. Candidate shards come straight from the
blocker (:meth:`repro.matching.blocking.Blocker.iter_shards`) over the
run's session, so blocking-index construction shares the executor, the
value cache and the persistent store's index tier. Batch boundaries
depend only on ``batch_size`` and every shard is scored by pure
functions, so the generated links are byte-identical for every worker
count, including their order.

The default blocker is rule-structure-aware (:func:`default_blocker`):
MultiBlock where the rule's comparisons support a dismissal-free
index, token blocking on the compared properties otherwise, gated by
``benchmarks/bench_multiblock.py`` asserting MultiBlock executions
generate exactly the full-index links on every bundled dataset.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.rule import MATCH_THRESHOLD, LinkageRule
from repro.core.nodes import SimilarityNode
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.distances.strings import routing_delta, routing_merged
from repro.engine.executor import Executor, resolve_executor, window_batches
from repro.engine.lru import CacheStats
from repro.engine.session import EngineSession, EngineStats
from repro.engine.store import ColumnStore, StoreStats
from repro.matching.blocking import Blocker, FullIndexBlocker, RuleBlocker
from repro.matching.multiblock import MultiBlocker, multiblock_supports

#: Environment variable selecting the default blocking strategy when an
#: engine is constructed without an explicit ``blocker`` (values:
#: ``auto`` — structure-aware selection, the default — ``multiblock``,
#: ``rule``, ``full``).
BLOCKER_ENV = "REPRO_ENGINE_BLOCKER"


def default_blocker(
    rule: LinkageRule,
    spec: str = "auto",
    session: "EngineSession | None" = None,
) -> Blocker:
    """The blocker an engine uses when none is configured explicitly.

    ``auto`` picks :class:`~repro.matching.multiblock.MultiBlocker`
    when the rule's comparison structure supports a selective,
    dismissal-free index (:func:`~repro.matching.multiblock.
    multiblock_supports` — gated on the ``bench_multiblock`` recall/
    reduction benchmark across the bundled datasets), falling back to
    token blocking on the compared properties
    (:class:`~repro.matching.blocking.RuleBlocker`) and, for rules
    without property comparisons, the full index. ``session`` binds
    MultiBlock index construction to the engine's caches and
    persistent index tier.
    """
    text = spec.strip().lower() or "auto"
    if text == "full":
        return FullIndexBlocker()
    if text not in ("auto", "multiblock", "rule"):
        raise ValueError(
            f"invalid blocker spec {spec!r}: expected auto, multiblock, "
            f"rule or full"
        )
    if text == "multiblock" or (text == "auto" and multiblock_supports(rule)):
        return MultiBlocker(rule, session=session)
    try:
        return RuleBlocker(rule)
    except ValueError:
        return FullIndexBlocker()


@dataclass(frozen=True)
class GeneratedLink:
    """A link produced by executing a rule."""

    uid_a: str
    uid_b: str
    score: float

    def as_pair(self) -> tuple[str, str]:
        return (self.uid_a, self.uid_b)


@dataclass(frozen=True)
class MatchStats:
    """Execution statistics of one :meth:`MatchingEngine.iter_links`
    run (available after the iterator is exhausted).

    The four cache tiers are reported separately — in-memory values /
    columns / scores plus the persistent column store — so consumers
    (CI assertions, docs, tuning scripts) can tell a cross-run store
    hit from an in-memory hit unambiguously. Counters are **per run**:
    sessions (and process-pool worker sessions) outlive individual
    runs, so the engine snapshots their statistics at run start and
    reports the delta — a warm rerun on a shared session really shows
    ``store.misses == 0``, not the cold run's misses folded in.
    ``size``/``capacity`` remain point-in-time gauges. On serial/thread
    runs the snapshots come from the shared session; on process runs
    they are the per-worker snapshots merged (each worker owns a
    private session).
    """

    batches: int
    pairs: int
    links: int
    values: CacheStats | None
    columns: CacheStats | None
    scores: CacheStats | None
    #: Persistent-tier counters; None when no cache dir is configured.
    #: Covers both store tiers: distance columns (``hits``/``misses``/
    #: ``writes``) and blocking indexes (``index_hits``/
    #: ``index_misses``/``index_writes``) — a warm rerun that skipped
    #: index construction shows ``index_misses == 0`` here.
    store: StoreStats | None
    #: Probe-side counters (blocking's batch probe path, reported
    #: alongside the ``index_*`` build-side counters): batch-probe
    #: invocations this run, and probe results served from the
    #: distinct-value-tuple memo instead of fresh key derivation.
    probe_batches: int = 0
    probe_memo_hits: int = 0
    #: Per-measure kernel routing this run: sorted ``(measure,
    #: batch_pairs, fallback_pairs)`` triples — non-empty pairs scored
    #: by a vectorized batch kernel vs the per-pair scalar fallback
    #: (cache and store hits count toward neither). Plain tuples so the
    #: stats pickle cleanly out of process-pool workers.
    kernel_routing: tuple[tuple[str, int, int], ...] = ()

    @property
    def value_stats(self) -> CacheStats | None:
        """Backward-compatible alias for the value tier."""
        return self.values


#: One engine session per worker process, lazily created and reused
#: across shards so a worker's transformed-value cache persists for the
#: whole execution (the process-pool analogue of the shared session).
_WORKER_SESSION: EngineSession | None = None
#: Cache-dir spec the worker session was created with; a different
#: spec (engine reconfigured between runs) recreates the session.
_WORKER_CACHE_DIR: str | None = None


def _shard_scores(
    payload: tuple[SimilarityNode, list[tuple[Entity, Entity]], str | None],
) -> tuple[int, np.ndarray, EngineStats]:
    """Score one candidate-pair shard inside a worker process.

    Module-level so process pools can pickle it. The worker session is
    explicitly serial — nesting a thread pool per worker process would
    oversubscribe the machine without changing any result. The payload
    carries the persistent cache dir (None = consult the environment):
    worker processes share the same on-disk store as the parent —
    atomic-rename writes make concurrent writers safe.
    """
    global _WORKER_SESSION, _WORKER_CACHE_DIR
    root, pairs, cache_dir = payload
    if _WORKER_SESSION is None or _WORKER_CACHE_DIR != cache_dir:
        _WORKER_SESSION = EngineSession(executor=0, store=cache_dir)
        _WORKER_CACHE_DIR = cache_dir
    context = _WORKER_SESSION.context(pairs)
    try:
        scores = context.scores(root)
    finally:
        _WORKER_SESSION.release_context(context)
    return os.getpid(), scores, _WORKER_SESSION.stats()


class MatchingEngine:
    """Executes linkage rules over data sources."""

    def __init__(
        self,
        blocker: Blocker | None = None,
        batch_size: int = 4096,
        threshold: float = MATCH_THRESHOLD,
        session: EngineSession | None = None,
        workers: Executor | int | str | None = None,
        cache_dir: "ColumnStore | str | None" = None,
        window: int | None = None,
    ):
        """``blocker=None`` selects rule-aware blocking per executed
        rule (:func:`default_blocker`; ``REPRO_ENGINE_BLOCKER``
        overrides the ``auto`` strategy), falling back to the full
        index for rules without property comparisons. ``window``
        bounds how many shards are in flight at once: ``None`` keeps
        2x the worker count (deeper than the workers themselves, so
        skewed shard runtimes don't drain the pool); larger windows
        hide more shard-size variance at proportionally more resident
        pair memory. ``session=None`` creates a fresh engine
        session per :meth:`iter_links` call (caches persist across the
        batches of one execution but cannot go stale across data
        sources); pass a session explicitly to share caches across
        executions. ``workers`` selects the sharding executor (see
        :func:`repro.engine.executor.resolve_executor`); ``None``
        consults ``REPRO_ENGINE_WORKERS``. A process-pool executor
        requires the default registries (worker processes build their
        own sessions) and therefore rejects an explicit ``session``.

        ``cache_dir`` enables the persistent distance-column store for
        the sessions this engine creates (a path, a
        :class:`~repro.engine.store.ColumnStore`, or ``None`` to
        consult ``REPRO_ENGINE_CACHE``; ``""`` forces it off). A warm
        rerun over unchanged sources then loads every distance column
        from disk instead of rebuilding it — links are byte-identical
        either way. An explicit ``session`` owns its own store and
        rejects ``cache_dir``."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1")
        self._blocker = blocker
        self._batch_size = batch_size
        self._threshold = threshold
        self._session = session
        self._window = window
        self._executor = resolve_executor(workers)
        if self._executor.kind == "process" and session is not None:
            raise ValueError(
                "process-pool sharding cannot share an in-process engine "
                "session; drop the session= argument or use thread workers"
            )
        if session is not None and cache_dir is not None:
            raise ValueError(
                "the persistent store is owned by the session; configure "
                "store= on EngineSession instead of cache_dir="
            )
        self._cache_dir = cache_dir
        #: Parent-side session of process-pool runs: blocking indexes
        #: are built (and persisted) in the parent even though scoring
        #: happens in worker sessions. Lazily created, persists across
        #: runs so repeated executions reuse in-memory indexes.
        self._process_parent_session: EngineSession | None = None
        self._last_stats: MatchStats | None = None
        #: Per-worker-process snapshots at the end of the previous run,
        #: keyed by pid — worker sessions persist across the runs of
        #: one engine, so per-run stats are deltas against these.
        self._worker_baselines: dict[int, EngineStats] = {}

    @property
    def executor(self) -> Executor:
        """The sharding executor of this engine."""
        return self._executor

    @property
    def window(self) -> int:
        """Shards kept in flight per scheduling round (resolved)."""
        if self._window is not None:
            return self._window
        return max(1, 2 * self._executor.workers)

    def last_run_stats(self) -> MatchStats | None:
        """Statistics of the most recently *completed* run (None before
        the first run; a partially consumed :meth:`iter_links` iterator
        does not update this)."""
        return self._last_stats

    def close(self) -> None:
        """Release pooled executor workers (including the blocking
        parent session's, on process-pool engines). Usable as a
        context manager."""
        self._executor.close()
        if self._process_parent_session is not None:
            self._process_parent_session.close()

    def __enter__(self) -> "MatchingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _resolve_blocker(
        self, rule: LinkageRule, session: EngineSession
    ) -> Blocker:
        if self._blocker is not None:
            return self._blocker
        spec = os.environ.get(BLOCKER_ENV, "")
        return default_blocker(rule, spec, session=session)

    def execute(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
    ) -> list[GeneratedLink]:
        """All links the rule generates between the two sources,
        sorted by descending score."""
        links = list(self.iter_links(rule, source_a, source_b))
        links.sort(key=lambda link: (-link.score, link.uid_a, link.uid_b))
        return links

    def iter_links(
        self,
        rule: LinkageRule,
        source_a: DataSource,
        source_b: DataSource,
    ) -> Iterator[GeneratedLink]:
        """Stream links batch by batch (memory-bounded).

        With a parallel executor, a window of shards (default 2x the
        worker count, ``window=``) is in flight at a time; links are
        always emitted in batch order, then pair order within a batch —
        the same order the serial engine produces, whatever the worker
        count.

        Candidate shards come straight from the blocker
        (:meth:`~repro.matching.blocking.Blocker.iter_shards`) — no
        re-chunking layer — and the blocker shares the run's engine
        session, so its index construction goes through the session
        executor, the value cache and (when configured) the persistent
        store's index tier. On process pools, scoring runs in
        per-worker sessions while blocking indexes are built in a
        parent-side session that persists across the engine's runs.
        """
        executor = self._executor
        if executor.kind != "process":
            session = (
                self._session
                if self._session is not None
                else EngineSession(store=self._cache_dir)
            )
        else:
            # Scoring happens in per-worker sessions, but candidate
            # generation is parent-side work: blocking gets a parent
            # session (sharing the same on-disk store) for its index
            # construction and value transformations.
            if self._process_parent_session is None:
                self._process_parent_session = EngineSession(
                    store=self._cache_dir
                )
            session = self._process_parent_session
        baseline = session.stats()
        blocker = self._resolve_blocker(rule, session)
        window = self.window
        batches = pairs = links = 0
        worker_stats: dict[int, EngineStats] = {}
        shard_cache_dir = self._shard_cache_dir()
        for group in window_batches(
            blocker.iter_shards(
                source_a, source_b, self._batch_size, session=session
            ),
            window,
        ):
            if executor.kind == "process":
                results = executor.map(
                    _shard_scores,
                    [(rule.root, batch, shard_cache_dir) for batch in group],
                )
                score_vectors = []
                for pid, scores, engine_stats in results:
                    worker_stats[pid] = engine_stats
                    score_vectors.append(scores)
            else:
                score_vectors = executor.map(
                    lambda batch: self._batch_scores(session, rule, batch),
                    group,
                )
            # Sort-stable merge: groups arrive in stream order and
            # map preserves submission order within a group, so plain
            # concatenation reproduces the serial emission order.
            for batch, scores in zip(group, score_vectors):
                batches += 1
                pairs += len(batch)
                for (entity_a, entity_b), score in zip(batch, scores):
                    if score >= self._threshold:
                        links += 1
                        yield GeneratedLink(
                            entity_a.uid, entity_b.uid, float(score)
                        )
        if executor.kind == "process":
            # Worker deltas plus the parent blocking session's delta:
            # index-tier traffic (and MultiBlock value transformations)
            # happen parent-side and would otherwise vanish from the
            # per-run report.
            parent = session.stats()
            deltas = [
                (snapshot, self._worker_baselines.get(pid))
                for pid, snapshot in worker_stats.items()
            ] + [(parent, baseline)]
            values = CacheStats.merged(
                [s.values.delta(b.values if b else None) for s, b in deltas]
            )
            columns = CacheStats.merged(
                [s.columns.delta(b.columns if b else None) for s, b in deltas]
            )
            scores_stats = CacheStats.merged(
                [s.scores.delta(b.scores if b else None) for s, b in deltas]
            )
            store_stats = StoreStats.merged(
                [
                    s.store.delta(b.store if b is not None else None)
                    for s, b in deltas
                    if s.store is not None
                ]
            )
            # Probing is parent-side work (workers only score), but sum
            # every delta so the report stays correct if that changes.
            probe_batches = sum(
                s.probe_batches - (b.probe_batches if b else 0)
                for s, b in deltas
            )
            probe_memo_hits = sum(
                s.probe_memo_hits - (b.probe_memo_hits if b else 0)
                for s, b in deltas
            )
            kernel_routing = routing_merged(
                [
                    routing_delta(s.kernel_routing, b.kernel_routing if b else None)
                    for s, b in deltas
                ]
            )
            self._worker_baselines.update(worker_stats)
        else:
            stats = session.stats()
            values = stats.values.delta(baseline.values)
            columns = stats.columns.delta(baseline.columns)
            scores_stats = stats.scores.delta(baseline.scores)
            store_stats = (
                stats.store.delta(baseline.store)
                if stats.store is not None
                else None
            )
            probe_batches = stats.probe_batches - baseline.probe_batches
            probe_memo_hits = stats.probe_memo_hits - baseline.probe_memo_hits
            kernel_routing = routing_delta(
                stats.kernel_routing, baseline.kernel_routing
            )
        self._last_stats = MatchStats(
            batches=batches,
            pairs=pairs,
            links=links,
            values=values,
            columns=columns,
            scores=scores_stats,
            store=store_stats,
            probe_batches=probe_batches,
            probe_memo_hits=probe_memo_hits,
            kernel_routing=kernel_routing,
        )

    def _shard_cache_dir(self) -> str | None:
        """The cache-dir spec shipped to process-pool shard workers
        (workers resolve their own store; None = consult the
        environment, as the parent would)."""
        if isinstance(self._cache_dir, ColumnStore):
            return str(self._cache_dir.root)
        return self._cache_dir

    def _batch_scores(
        self,
        session: EngineSession,
        rule: LinkageRule,
        batch: list[tuple[Entity, Entity]],
    ) -> np.ndarray:
        """Score one batch through the shared session (serial and
        thread paths; thread-safe via the session's locked caches)."""
        context = session.context(batch)
        try:
            return context.scores(rule.root)
        finally:
            # Column/score vectors are batch-local; evict them so long
            # streams don't pin dead arrays until capacity eviction.
            # (Value-tier entries persist — that's the cross-batch win.)
            session.release_context(context)


def generate_links(
    rule: LinkageRule,
    source_a: DataSource,
    source_b: DataSource,
    blocker: Blocker | None = None,
    workers: Executor | int | str | None = None,
    cache_dir: "ColumnStore | str | None" = None,
) -> list[GeneratedLink]:
    """Convenience wrapper around :class:`MatchingEngine`."""
    engine = MatchingEngine(blocker=blocker, workers=workers, cache_dir=cache_dir)
    try:
        return engine.execute(rule, source_a, source_b)
    finally:
        engine.close()
