"""Incremental-matching helpers: synthetic deltas and gate rules.

The incremental path (:meth:`repro.matching.engine.MatchingEngine.link_diff`)
promises byte-identical links to a cold rerun after any sequence of
:meth:`repro.data.source.DataSource.apply_delta` calls. Exercising that
promise needs two reusable ingredients, shared by the equivalence test
suite (``tests/test_incremental.py``), the delta benchmark
(``benchmarks/bench_incremental.py``) and the ``repro-experiments
delta`` command:

- :func:`random_source_delta` mutates a live source in place with a
  reproducible mix of value revisions, fresh inserts and deletes,
  returning the :class:`~repro.data.source.SourceDelta` the engine
  needs to bound re-scoring;
- :func:`dataset_rule` builds the per-dataset single-comparison rule
  the gate scores with — a normalised Levenshtein over the dataset's
  near-identifying property pair, so every bundled dataset produces a
  non-trivial link set without a learning run.
"""

from __future__ import annotations

import random

from repro.core.nodes import ComparisonNode, PropertyNode, TransformationNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource, SourceDelta

#: Near-identifying property pair per bundled dataset: the single
#: comparison the incremental equivalence gate scores. Chosen to give
#: every dataset a dense, non-trivial link surface (title/name-like
#: values present on both sides).
DATASET_RULE_PROPERTIES: dict[str, tuple[str, str]] = {
    "cora": ("title", "title"),
    "restaurant": ("name", "name"),
    "sider_drugbank": ("siderName", "drugName"),
    "nyt": ("nytName", "name"),
    "linkedmdb": ("label", "title"),
    "dbpedia_drugbank": ("label", "drugName"),
}


def dataset_rule(name: str) -> LinkageRule:
    """The equivalence gate's rule for a bundled dataset.

    One lowercased Levenshtein comparison over the dataset's
    near-identifying property pair (:data:`DATASET_RULE_PROPERTIES`).
    """
    try:
        prop_a, prop_b = DATASET_RULE_PROPERTIES[name]
    except KeyError:
        raise ValueError(
            f"no gate rule for dataset {name!r}; known: "
            f"{sorted(DATASET_RULE_PROPERTIES)}"
        ) from None
    return LinkageRule(
        ComparisonNode(
            "levenshtein",
            1.0,
            TransformationNode("lowerCase", (PropertyNode(prop_a),)),
            TransformationNode("lowerCase", (PropertyNode(prop_b),)),
        )
    )


def _perturbed(entity: Entity, rng: random.Random) -> dict:
    """A value revision for one of the entity's populated properties.

    Appends a short random marker to the first value, which moves
    every string-distance score involving the entity without
    destroying its blocking tokens entirely — revised entities stay
    *plausible* candidates, the hard case for incremental re-scoring.
    """
    populated = [name for name, values in entity.properties.items() if values]
    if not populated:
        return {"delta": (f"rev {rng.randrange(10**6)}",)}
    name = rng.choice(sorted(populated))
    values = entity.properties[name]
    return {name: (f"{values[0]} rev{rng.randrange(100)}",) + tuple(values[1:])}


def random_source_delta(
    source: DataSource,
    rng: random.Random,
    upserts: int = 0,
    deletes: int = 0,
) -> SourceDelta:
    """Apply a reproducible random delta to ``source`` in place.

    ``deletes`` entities are removed; ``upserts`` split roughly evenly
    between revisions of surviving entities (same uid, perturbed
    value — the replace case) and fresh inserts cloned from random
    surviving entities under new uids (the insert case). Both counts
    are clamped to what the source can sustain, and the same ``rng``
    state always produces the same delta. Returns the
    :class:`~repro.data.source.SourceDelta` recorded on the source's
    epoch chain.
    """
    uids = source.uids()
    deletes = max(0, min(deletes, len(uids) - 1))
    delete_uids = rng.sample(uids, deletes) if deletes else []
    survivors = [uid for uid in uids if uid not in set(delete_uids)]
    upsert_entities: list[Entity] = []
    used: set[str] = set(delete_uids)
    for index in range(max(0, upserts)):
        revise = index % 2 == 0
        pool = [uid for uid in survivors if uid not in used]
        if revise and pool:
            uid = rng.choice(pool)
            used.add(uid)
            entity = source.get(uid)
            upsert_entities.append(entity.revised(_perturbed(entity, rng)))
        else:
            uid = f"delta:{rng.randrange(10**9)}"
            while uid in source or uid in used:
                uid = f"delta:{rng.randrange(10**9)}"
            used.add(uid)
            if survivors:
                template = source.get(rng.choice(survivors))
                properties = {
                    **dict(template.properties),
                    **_perturbed(template, rng),
                }
            else:
                properties = {"delta": (f"fresh {rng.randrange(10**6)}",)}
            upsert_entities.append(Entity(uid, properties))
    return source.apply_delta(upsert_entities, delete_uids)


def rebuilt(source: DataSource) -> DataSource:
    """A fresh source with the same name and current entities.

    The cold-rerun side of the equivalence gate: no epoch chain, no
    persisted lineage — exactly what a from-scratch ingestion of the
    mutated data would produce. Its fingerprint intentionally differs
    from the delta-bearing source's (epoch chains are provenance, not
    content hashes); the gate compares *links*, which may not depend
    on how the source reached its current state.
    """
    return DataSource(source.name, list(source))
