"""Rule execution engine: apply linkage rules to whole data sources.

The paper scopes rule *execution* out (Section 3) and refers to the
MultiBlock engine of the Silk framework; this package provides the
equivalent substrate: candidate generation via blocking, batch rule
evaluation and link generation, plus evaluation of generated link sets
against reference links.
"""

from repro.matching.blocking import (
    Blocker,
    FullIndexBlocker,
    RuleBlocker,
    SortedNeighbourhoodBlocker,
    TokenBlocker,
)
from repro.matching.engine import (
    GeneratedLink,
    MatchingEngine,
    default_blocker,
    generate_links,
)
from repro.matching.evaluation import LinkEvaluation, evaluate_links
from repro.matching.multiblock import (
    BlockingQuality,
    MultiBlocker,
    blocking_quality,
    multiblock_supports,
)

__all__ = [
    "Blocker",
    "FullIndexBlocker",
    "RuleBlocker",
    "SortedNeighbourhoodBlocker",
    "TokenBlocker",
    "GeneratedLink",
    "MatchingEngine",
    "default_blocker",
    "generate_links",
    "LinkEvaluation",
    "evaluate_links",
    "BlockingQuality",
    "MultiBlocker",
    "blocking_quality",
    "multiblock_supports",
]
