"""MultiBlock: multidimensional, rule-aware candidate generation.

The paper executes learned rules with the MultiBlock engine of the Silk
framework [19] (Isele, Jentzsch & Bizer: "Efficient Multidimensional
Blocking for Link Discovery without losing Recall", WebDB 2011). This
module implements the same idea from scratch:

* every comparison contributes an *index*: entities are mapped into
  blocks derived from the comparison's **transformed** values — the
  same value trees the rule evaluates, so e.g. a rule comparing
  ``lowerCase(tokenize(label))`` blocks on lowercased tokens, not on
  the raw label;
* the block extent follows the comparison's distance threshold, so
  numeric/date/geographic comparisons index into grid cells of width
  θ and candidates are read from adjacent cells (pairs within θ can
  never be more than one cell apart — no false dismissals);
* indexes compose through the aggregation hierarchy: ``min`` requires
  every child to match, so its candidate set is the *intersection* of
  the children's; ``max`` and ``wmean`` score at least 0.5 only if some
  child scores positively, so their candidate set is the *union*.

Guarantees: grid indexers (numeric, date, geographic latitude) and the
set indexers for ``equality``/token measures are dismissal-free with
respect to "the comparison could score above 0". Character measures
(levenshtein & friends) use padded q-gram indexing, which can in
principle dismiss a pair whose edit distance is large relative to the
string length; with the thresholds GenLink learns this does not occur
in practice (the recall of every blocker is measurable with
:func:`blocking_quality`).

Index construction is engine-integrated: block keys are derived once
per *distinct* transformed value tuple, per-comparison builds fan
across the session's shared-memory executor, and finished block tables
persist in the session store's index tier keyed by source fingerprint
× comparison structure — warm reruns skip construction entirely.
Probing mirrors it (:meth:`MultiBlocker.probe_batch`): whole A-side
chunks evaluate the candidate algebra at once, per-comparison probe
results memoise per distinct transformed value tuple, and chunks fan
across the same executor. :func:`multiblock_supports` is the
structure test behind the engine's default-blocker selection.
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from bisect import bisect_left
from dataclasses import dataclass
from itertools import chain
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    SimilarityNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.distances.dates import parse_date
from repro.distances.geographic import parse_point
from repro.distances.numeric import parse_number
from repro.engine.compiler import signature_token, value_tree_signature
from repro.engine.session import EngineSession
from repro.engine.values import evaluate_value_op
from repro.matching.blocking import (
    _PROBE_CHUNK,
    _affected_code_pair_lists,
    _chunked,
    _code_pair_lists,
    _memo_put,
    _ProbeLedger,
    _union_codes,
    Blocker,
    CandidatePair,
    FullIndexBlocker,
    fan_entity_chunks,
)
from repro.transforms.registry import TransformationRegistry
from repro.transforms.registry import default_registry as default_transforms


def _entity_values(
    node,
    entity: Entity,
    transforms: TransformationRegistry,
    session: "EngineSession | None",
) -> tuple[str, ...]:
    """Transformed values for index construction/probing: through the
    session value cache when one is available (shared with rule
    evaluation), plain evaluation otherwise."""
    if session is not None:
        return session.entity_values(node, entity)
    return evaluate_value_op(node, entity, transforms)

#: Metres per degree of latitude (conservative lower bound).
_METRES_PER_DEGREE_LATITUDE = 110_574.0


class ComparisonIndexer(ABC):
    """Maps a comparison's value sets into hashable block keys.

    Two entities are candidates for the comparison iff their key sets
    intersect (after :meth:`probe_keys` expansion on the left side).
    """

    @abstractmethod
    def block_keys(self, values: Sequence[str]) -> set:
        """Block keys under which an entity with ``values`` is filed."""

    def probe_keys(self, values: Sequence[str]) -> set:
        """Keys to look up when searching partners for ``values``.

        Grid indexers override this to also probe adjacent cells; the
        default probes exactly the filing keys.
        """
        return self.block_keys(values)

    def reverse_probe_keys(self, values: Sequence[str]) -> set:
        """Keys to look up in a *reverse* index — probe-side entities
        filed under their own block keys — to find every entity whose
        :meth:`probe_keys` reach any of ``values``'s block keys.

        Must over-approximate (missed entities would silently drop
        candidate pairs from an incremental rescore). Exact for
        indexers whose probe keys equal their block keys; grid
        indexers widen by one extra cell per side to absorb the
        floor-rounding asymmetry between probing from A and probing
        back from B.
        """
        return self.probe_keys(values)

    def cache_token(self) -> str:
        """Stable identity of this indexer's block-key derivation.

        Part of the persistent index-tier key: two indexers with the
        same token must file identical values under identical keys
        (grid indexers fold their extent in, q-gram indexers their q).
        """
        return type(self).__name__


class EqualityIndexer(ComparisonIndexer):
    """Exact-value blocks; dismissal-free for the equality measure."""

    def block_keys(self, values: Sequence[str]) -> set:
        return set(values)


class TokenIndexer(ComparisonIndexer):
    """One block per lowercased whitespace token.

    Dismissal-free for token-set measures (jaccard, dice, overlap,
    mongeElkan): any pair with distance < 1 shares at least one token.
    """

    def block_keys(self, values: Sequence[str]) -> set:
        keys: set[str] = set()
        for value in values:
            keys.update(token.lower() for token in value.split())
        return keys


class QGramIndexer(ComparisonIndexer):
    """Padded q-gram blocks for character-based measures.

    Strings within a small edit distance share most of their q-grams;
    strings shorter than ``q`` are filed under themselves.
    """

    def __init__(self, q: int = 2):
        if q < 1:
            raise ValueError("q must be >= 1")
        self._q = q

    def cache_token(self) -> str:
        return f"QGramIndexer:q={self._q}"

    def block_keys(self, values: Sequence[str]) -> set:
        keys: set[str] = set()
        for value in values:
            text = f"^{value.lower()}$"
            if len(text) <= self._q:
                keys.add(text)
                continue
            keys.update(
                text[i : i + self._q] for i in range(len(text) - self._q + 1)
            )
        return keys


class GridIndexer(ComparisonIndexer):
    """1-D grid blocks of width ``extent`` over a numeric projection.

    Values within ``extent`` of each other land in the same or an
    adjacent cell, so probing every block intersecting
    ``[v - extent, v + extent]`` is dismissal-free. The probe range
    carries a small relative guard so pairs sitting exactly on the
    threshold survive float rounding (the distance measures compare
    ``d <= theta`` in float arithmetic too).
    """

    def __init__(self, extent: float):
        if not (extent > 0.0) or not math.isfinite(extent):
            raise ValueError(f"extent must be positive and finite, got {extent}")
        self._extent = extent

    def cache_token(self) -> str:
        # repr() of the float is exact, so extents that differ in any
        # bit key differently (subclasses inherit: their class name and
        # derived extent identify the projection + grid).
        return f"{type(self).__name__}:extent={self._extent!r}"

    def project(self, value: str) -> float | None:
        """The numeric projection of one value; None if unparseable.

        Uses the same embedded-number extraction as the ``numeric``
        distance measure — the index must see exactly the values the
        comparison will see, or pairs the measure accepts could be
        dismissed.
        """
        return parse_number(value)

    def block_keys(self, values: Sequence[str]) -> set:
        keys: set[int] = set()
        for value in values:
            projected = self.project(value)
            if projected is not None:
                keys.add(math.floor(projected / self._extent))
        return keys

    def probe_keys(self, values: Sequence[str]) -> set:
        keys: set[int] = set()
        extent = self._extent
        for value in values:
            projected = self.project(value)
            if projected is None:
                continue
            guard = max(extent, abs(projected)) * 1e-9
            low = math.floor((projected - extent - guard) / extent)
            high = math.floor((projected + extent + guard) / extent)
            keys.update(range(low, high + 1))
        return keys

    def reverse_probe_keys(self, values: Sequence[str]) -> set:
        # One extra cell each side: a probe from value v_a reaches
        # cell(v_b) whenever |v_a - v_b| <~ extent, which bounds
        # |cell(v_a) - cell(v_b)| by 2 — one cell beyond the forward
        # probe range of v_b.
        keys: set[int] = set()
        extent = self._extent
        for value in values:
            projected = self.project(value)
            if projected is None:
                continue
            guard = max(extent, abs(projected)) * 1e-9
            low = math.floor((projected - extent - guard) / extent) - 1
            high = math.floor((projected + extent + guard) / extent) + 1
            keys.update(range(low, high + 1))
        return keys


class DateGridIndexer(GridIndexer):
    """Grid over proleptic ordinal day numbers (date measure)."""

    def project(self, value: str) -> float | None:
        parsed = parse_date(value)
        return float(parsed.toordinal()) if parsed is not None else None


class LatitudeGridIndexer(GridIndexer):
    """Grid over latitude degrees for the geographic measure.

    Latitude alone gives a sound 1-D reduction: two points within θ
    metres differ by at most θ / 110574 degrees of latitude regardless
    of longitude, so the ±1 cell probe never dismisses a true match.
    (A longitude dimension would need latitude-dependent extents to
    stay sound near the poles; the latitude grid keeps the guarantee
    simple and already removes the quadratic blow-up.)
    """

    def __init__(self, threshold_metres: float):
        super().__init__(
            extent=max(threshold_metres, 1.0) / _METRES_PER_DEGREE_LATITUDE
        )

    def project(self, value: str) -> float | None:
        point = parse_point(value)
        return point[0] if point is not None else None


#: Largest Levenshtein threshold (character edits) the q-gram index
#: accepts: k edits destroy at most 2k padded bigrams, so shared grams
#: are guaranteed for strings longer than ~2k+2 characters and near-
#: certain below that. GenLink's learned name comparisons sit at 1-2.
_MAX_INDEXED_EDITS = 2.0

#: Largest threshold for [0, 1]-normalised character measures
#: (normalizedLevenshtein, jaro, jaroWinkler): here the permitted edits
#: scale with the string length and so does the q-gram overlap, making
#: moderate thresholds safe at every length.
_MAX_INDEXED_NORMALIZED = 0.25


def indexer_for_comparison(node: ComparisonNode) -> ComparisonIndexer | None:
    """The indexer matching a comparison's measure, or None when the
    measure (at this comparison's threshold) has no dismissal-free
    index — the caller then treats the comparison as non-selective,
    which is always sound.

    Unindexed on principle: ``relativeNumeric`` (its absolute tolerance
    scales with the values' magnitude, so no fixed grid works) and
    ``mongeElkan`` (tokens may match approximately, so exact-token
    blocks lose recall). Character measures are indexed only up to the
    thresholds where q-gram co-occurrence is (near-)guaranteed;
    learned rules with looser thresholds fall back to the other
    comparisons of the rule for pruning.
    """
    metric = node.metric
    if metric == "equality":
        return EqualityIndexer()
    if metric in ("jaccard", "dice", "overlap"):
        # Exact-token-set measures: distance < 1 requires >= 1 shared
        # token, so token blocking never dismisses.
        return TokenIndexer()
    if metric in ("qgrams", "softJaccard"):
        # qgrams: distance < 1 literally means shared grams. The
        # soft-jaccard tolerance is per token (<= 1 edit), which keeps
        # bigram overlap through the matching token.
        return QGramIndexer()
    if metric == "levenshtein" and node.threshold <= _MAX_INDEXED_EDITS:
        return QGramIndexer()
    if (
        metric in ("normalizedLevenshtein", "jaro", "jaroWinkler")
        and node.threshold <= _MAX_INDEXED_NORMALIZED
    ):
        return QGramIndexer()
    if metric == "numeric":
        return GridIndexer(extent=max(node.threshold, 1e-9))
    if metric == "date":
        return DateGridIndexer(extent=max(node.threshold, 1.0))
    if metric == "geographic":
        return LatitudeGridIndexer(threshold_metres=node.threshold)
    return None


def multiblock_supports(rule: LinkageRule) -> bool:
    """Whether a rule's comparison structure gives MultiBlock a
    selective, dismissal-free candidate set.

    Mirrors the candidate-set algebra of :class:`MultiBlocker`: a
    comparison is selective iff it has an indexer at its threshold; a
    ``min`` aggregation is selective if *any* child is (intersection);
    ``max``/``wmean`` need *every* child selective, because the union
    with one unindexable child is the whole source. Engines use this to
    pick :class:`MultiBlocker` as the default only where it actually
    prunes.
    """

    def selective(node: SimilarityNode) -> bool:
        if isinstance(node, ComparisonNode):
            return indexer_for_comparison(node) is not None
        assert isinstance(node, AggregationNode)
        if node.function == "min":
            return any(selective(child) for child in node.operators)
        return all(selective(child) for child in node.operators)

    return selective(rule.root)


@dataclass(frozen=True)
class ComparisonIndex:
    """A built index of source B for one comparison."""

    comparison: ComparisonNode
    indexer: ComparisonIndexer
    #: block key -> uids of B entities filed under it (source order).
    blocks: dict

    def candidates_for(
        self,
        entity: Entity,
        transforms: TransformationRegistry,
        session: EngineSession | None = None,
    ) -> set[str]:
        values = _entity_values(self.comparison.source, entity, transforms, session)
        return self.candidates_for_values(values)

    def candidates_for_values(self, values: Sequence[str]) -> set[str]:
        """Candidate uids for one transformed value tuple (the
        memoisable half of :meth:`candidates_for` — identical values
        always probe identical keys, so batch probing derives this
        once per *distinct* tuple)."""
        uids: set[str] = set()
        for key in self.indexer.probe_keys(values):
            uids.update(self.blocks.get(key, ()))
        return uids


def comparison_index_token(
    comparison: ComparisonNode, indexer: ComparisonIndexer
) -> str:
    """Persistent-tier key token of one comparison's target index.

    Combines the indexer's block-key derivation (class + extent/q —
    thresholds enter *only* through the indexer they select) with the
    canonical structural signature of the target value tree, so every
    weight mutation and every comparison sharing the same target tree
    and indexer configuration shares one persisted index.
    """
    return (
        f"cmpidx:v1:{indexer.cache_token()}:"
        f"{signature_token(value_tree_signature(comparison.target))}"
    )


def _comparison_blocks_patcher(
    value_node,
    source: DataSource,
    indexer: ComparisonIndexer,
    transforms: TransformationRegistry,
    session: EngineSession | None,
):
    """An :meth:`EngineSession.blocking_index` patcher moving one
    comparison block table a source delta forward: displaced entity
    versions leave the blocks their old transformed values filed them
    under, upserted versions join their new keys' blocks. Joined
    blocks re-sort by the entity's current source position, so the
    patched table equals a cold rebuild block-for-block (deletions
    preserve surviving uids' relative order; dict upsert semantics
    keep a replaced uid's slot)."""

    def patch(blocks: dict, delta) -> dict:
        blocks = dict(blocks)
        for old in delta.old_entities():
            uid = old.uid
            values = _entity_values(value_node, old, transforms, session)
            for key in indexer.block_keys(values):
                block = blocks.get(key)
                if block is None or uid not in block:
                    continue
                pruned = tuple(u for u in block if u != uid)
                if pruned:
                    blocks[key] = pruned
                else:
                    del blocks[key]
        order: dict[str, int] | None = None
        fallback = 0
        for entity in delta.upserts:
            uid = entity.uid
            values = _entity_values(value_node, entity, transforms, session)
            for key in indexer.block_keys(values):
                block = blocks.get(key)
                if block is None:
                    blocks[key] = (uid,)
                elif uid not in block:
                    if order is None:
                        order = {u: i for i, u in enumerate(source.uids())}
                        # Mid-chain uids a later delta removes are not
                        # in the live source; park them at the end (a
                        # later patch step deletes them anyway).
                        fallback = len(order)
                    blocks[key] = tuple(
                        sorted(
                            block + (uid,),
                            key=lambda u: order.get(u, fallback),
                        )
                    )
        return blocks

    return patch


def _indexed_blocks(
    value_node,
    source: DataSource,
    indexer: ComparisonIndexer,
    transforms: TransformationRegistry,
    session: EngineSession | None,
    fan: bool,
    token: str,
) -> dict:
    """One ``{block key: (uids...)}`` table of ``source`` under a value
    tree × indexer, resolved through the session's index memo and
    persistent index tier under ``token`` (patched forward along the
    source's delta chain instead of rebuilt, when possible)."""

    def build() -> dict:
        chunk_session = session if fan else None

        def extract(chunk):
            return [
                (
                    entity.uid,
                    _entity_values(value_node, entity, transforms, session),
                )
                for entity in chunk
            ]

        per_entity = fan_entity_chunks(chunk_session, source.entities(), extract)
        key_memo: dict[tuple[str, ...], tuple] = {}
        blocks: dict = {}
        for uid, values in per_entity:
            keys = key_memo.get(values)
            if keys is None:
                keys = tuple(indexer.block_keys(values))
                key_memo[values] = keys
            for key in keys:
                block = blocks.get(key)
                if block is None:
                    blocks[key] = [uid]
                else:
                    block.append(uid)
        return {key: tuple(uids) for key, uids in blocks.items()}

    if session is not None:
        return session.blocking_index(
            source.fingerprint(),
            token,
            build,
            lineage=source.delta_chain(),
            patcher=_comparison_blocks_patcher(
                value_node, source, indexer, transforms, session
            ),
        )
    return build()


def build_comparison_index(
    comparison: ComparisonNode,
    source_b: DataSource,
    transforms: TransformationRegistry,
    session: EngineSession | None = None,
    fan: bool = True,
) -> ComparisonIndex | None:
    """Index source B under a comparison's target value tree.

    With a ``session``, transformed values go through the engine's
    value cache (shared with the rule evaluation that follows blocking)
    and the finished block table resolves through the session's index
    memo and the persistent store's index tier — a warm rerun over an
    unchanged source skips construction entirely, and a source a few
    deltas ahead of a persisted epoch patches the table forward
    instead of rebuilding.

    Construction is value-memoised: block keys are derived once per
    *distinct* transformed value tuple, and (with ``fan=True``) value
    extraction fans across the session's shared-memory executor.
    Callers that already parallelise per comparison pass ``fan=False``
    — nesting executor fan-outs inside pool workers would deadlock a
    saturated thread pool.
    """
    indexer = indexer_for_comparison(comparison)
    if indexer is None:
        return None
    blocks = _indexed_blocks(
        comparison.target,
        source_b,
        indexer,
        transforms,
        session,
        fan,
        comparison_index_token(comparison, indexer),
    )
    return ComparisonIndex(comparison=comparison, indexer=indexer, blocks=blocks)


def _blocks_code_view(blocks: dict, code_of: dict) -> dict:
    """One comparison's block table in code space: each block a sorted
    unique ``int32`` array of B-entity codes."""
    return {
        key: np.unique(
            np.fromiter(
                (code_of[uid] for uid in uids),
                dtype=np.int32,
                count=len(uids),
            )
        )
        for key, uids in blocks.items()
    }


@dataclass(frozen=True)
class MultiProbeIndex:
    """Probe-side state of one :class:`MultiBlocker` over a target
    source: the per-comparison indexes, their code-space views, and
    the shared code table. Codes number *all* B uids in sorted order
    (unindexable nodes contribute ``all_codes`` to the candidate
    algebra), so sorted code arrays are sorted uid sequences."""

    indexes: dict[int, ComparisonIndex]
    #: comparison node id -> {block key: sorted unique int32 codes}.
    views: dict[int, dict]
    #: code -> uid, ascending (the shared code table of every view).
    uids: tuple[str, ...]
    #: Candidate set of unindexable nodes (identity-compared sentinel).
    all_codes: np.ndarray
    #: Code-space size (mask length for unions/intersections).
    size: int

    @property
    def all_uids(self) -> frozenset:
        """uid view of the full candidate universe (parity suites)."""
        return frozenset(self.uids)


class MultiBlocker(Blocker):
    """Aggregation-aware multidimensional blocking for one rule.

    ``max_comparisons`` caps how many comparison indexes are built;
    extra comparisons are simply not used for pruning (which is always
    sound — fewer indexes means a larger candidate set).
    """

    def __init__(
        self,
        rule: LinkageRule,
        transforms: TransformationRegistry | None = None,
        max_comparisons: int = 8,
        session: EngineSession | None = None,
    ):
        self._rule = rule
        self._max_comparisons = max_comparisons
        #: Built with defaults (no pinned transforms/session): such a
        #: blocker adopts an engine-passed run session wholesale, so an
        #: explicit `MatchingEngine(blocker=MultiBlocker(rule),
        #: cache_dir=...)` still indexes through the engine's caches
        #: and persistent index tier — and through the transforms the
        #: engine will evaluate the rule under.
        self._adoptable = session is None and transforms is None
        if session is None:
            self._transforms = (
                transforms if transforms is not None else default_transforms()
            )
            self._session = EngineSession(transforms=self._transforms)
        else:
            if transforms is not None and transforms is not session.transforms:
                raise ValueError(
                    "conflicting transformation registries: pass either a "
                    "session or a registry, not both"
                )
            # Index construction goes through the session's value cache,
            # so blocking must use the session's registry.
            self._transforms = session.transforms
            self._session = session

    def _active_session(self, session: "EngineSession | None") -> EngineSession:
        """The session one call runs under: an engine-passed session
        when this blocker is adoptable (built with defaults), its own
        pinned session otherwise."""
        if session is not None and self._adoptable:
            return session
        return self._session

    # -- candidate set algebra -------------------------------------------------
    def _node_codes(
        self,
        node: SimilarityNode,
        entity: Entity,
        probe: MultiProbeIndex,
        session: EngineSession,
        memo: dict,
        memo_hits: list[int],
    ) -> np.ndarray:
        """Codes of B entities that could make ``node`` score > 0 for
        ``entity``; ``probe.all_codes`` (identity-compared) when the
        node is not indexable.

        The whole algebra runs in code space: a comparison unions its
        probed blocks through a boolean mask over the code space (one
        C pass, result sorted for free via ``flatnonzero``); ``min``
        intersects and ``max``/``wmean`` union child sets the same
        way. Per-comparison probe results memoise in ``memo`` keyed by
        ``(comparison id, transformed value tuple)`` — the probe-side
        mirror of the index build's distinct-value memo — so entities
        sharing a transformed tuple (duplicate-heavy sources, constant
        properties) skip probe-key derivation *and* the union;
        ``memo_hits[0]`` counts the skips. The memo is shared across
        fanned probe chunks — dict reads/writes are atomic and a
        racing recompute is deterministic, so sharing can only save
        work, never change a result.
        """
        if isinstance(node, ComparisonNode):
            view = probe.views.get(id(node))
            if view is None:
                return probe.all_codes
            values = _entity_values(
                node.source, entity, session.transforms, session
            )
            key = (id(node), values)
            cached = memo.get(key)
            if cached is not None:
                memo_hits[0] += 1
                return cached
            get = view.get
            blocks = []
            for probe_key in probe.indexes[id(node)].indexer.probe_keys(values):
                block = get(probe_key)
                if block is not None:
                    blocks.append(block)
            codes = _union_codes(blocks, probe.size)
            _memo_put(memo, key, codes)
            return codes
        assert isinstance(node, AggregationNode)
        child_sets = [
            self._node_codes(child, entity, probe, session, memo, memo_hits)
            for child in node.operators
        ]
        all_codes = probe.all_codes
        if node.function == "min":
            selective = [s for s in child_sets if s is not all_codes]
            if not selective:
                return all_codes
            if len(selective) == 1:
                return selective[0]
            mask = np.zeros(probe.size, dtype=bool)
            mask[selective[0]] = True
            for child_set in selective[1:]:
                other = np.zeros(probe.size, dtype=bool)
                other[child_set] = True
                mask &= other
            return np.flatnonzero(mask)
        # max / wmean: a positive overall score requires at least one
        # positive child, so the union is dismissal-free.
        if any(s is all_codes for s in child_sets):
            return all_codes
        return _union_codes(child_sets, probe.size)

    def signature(self) -> str | None:
        """None: MultiBlock persistence is finer-grained — each
        comparison index is its own index-tier entry (see
        :func:`comparison_index_token`), so rules sharing comparisons
        share persisted indexes."""
        return None

    def build_index(self, source, session=None):
        """All comparison indexes of this blocker's rule over a target
        source, keyed by comparison node id (construction fans across
        the session executor; each index resolves through the
        session's memo and persistent index tier). A blocker with
        pinned transforms or an explicit session uses its own session
        regardless of ``session`` — its transforms define the index
        keys."""
        comparisons = self._rule.comparisons()[: self._max_comparisons]
        own = self._active_session(session)
        transforms = own.transforms
        executor = own.executor
        if (
            executor.shares_memory
            and executor.workers > 1
            and len(comparisons) > 1
        ):
            built = executor.map(
                lambda comparison: build_comparison_index(
                    comparison, source, transforms, own, fan=False
                ),
                comparisons,
            )
        else:
            built = [
                build_comparison_index(
                    comparison, source, transforms, own, fan=True
                )
                for comparison in comparisons
            ]
        return {
            id(comparison): index
            for comparison, index in zip(comparisons, built)
            if index is not None
        }

    def probe_index(
        self,
        source_a: DataSource,
        source_b: DataSource,
        session: "EngineSession | None" = None,
    ) -> "MultiProbeIndex":
        """The probe-side state over a target source: the built
        comparison indexes, their code-space views and the shared uid
        code table. The uid table and each comparison's code view
        resolve through the session's index memo and persistent index
        tier (key suffix ``probe-codes-v1``), so warm sessions and
        warm stores skip the derivation like they skip the block
        tables themselves."""
        own = self._active_session(session)
        indexes = self.build_index(source_b, session=session)

        def sorted_uids() -> tuple[str, ...]:
            return tuple(sorted(entity.uid for entity in source_b))

        # View patchers recompute from the already-patched block table
        # and the current code table — the view *is* a derivation, so
        # "patch" means re-derive against the final epoch (idempotent
        # per chain step; counted as a patch, not a build).
        uids: tuple[str, ...] = self._resolve_probe_index(
            source_b,
            own,
            "multiblock-uid-codes-v1",
            sorted_uids,
            patcher=lambda payload, delta: sorted_uids(),
        )
        code_of = {uid: code for code, uid in enumerate(uids)}
        views: dict[int, dict] = {}
        for node_id, comparison_index in indexes.items():
            token = (
                comparison_index_token(
                    comparison_index.comparison, comparison_index.indexer
                )
                + "|probe-codes-v1"
            )
            views[node_id] = self._resolve_probe_index(
                source_b,
                own,
                token,
                lambda ci=comparison_index: _blocks_code_view(
                    ci.blocks, code_of
                ),
                patcher=lambda payload, delta, ci=comparison_index: (
                    _blocks_code_view(ci.blocks, code_of)
                ),
            )
        return MultiProbeIndex(
            indexes=indexes,
            views=views,
            uids=uids,
            all_codes=np.arange(len(uids), dtype=np.int32),
            size=len(uids),
        )

    def probe_batch(self, entities, index, session=None, memo=None):
        """Batch probe: evaluates the min/max/wmean candidate algebra
        for a whole A-side chunk in code space, memoising
        per-comparison probe results per distinct transformed value
        tuple (mirroring the index build's distinct-value memo) and
        fanning chunks across the session's shared-memory executor.
        Returns one sorted partner-code array per entity (sorted codes
        are sorted uids — the blocker's deterministic emission order);
        :meth:`probe_uids` materialises the uid view.

        ``memo`` lets a streaming caller share the distinct-value memo
        across successive probe batches (``_iter_pairs`` threads one
        through the whole run); ``None`` scopes it to this call.
        """
        own = self._active_session(session)
        root = self._rule.root
        shared_memo = memo if memo is not None else {}

        def probe(chunk):
            hits = [0]
            results = [
                self._node_codes(root, entity, index, own, shared_memo, hits)
                for entity in chunk
            ]
            own.record_probe(memo_hits=hits[0])
            return results

        own.record_probe(batches=1)
        return fan_entity_chunks(own, entities, probe)

    def probe_uids(self, index, partners):
        return tuple(map(index.uids.__getitem__, partners.tolist()))

    def _reverse_blocks(
        self,
        comparison: ComparisonNode,
        indexer: ComparisonIndexer,
        source_a: DataSource,
        session: "EngineSession | None",
    ) -> dict:
        """Reverse comparison index: probe-side (A) entities filed
        under the block keys of the comparison's *source* value tree.
        ``reverse[key]`` answers "which A entities' probe keys could
        reach ``key``" (after :meth:`ComparisonIndexer.
        reverse_probe_keys` expansion at lookup time). Persisted and
        patched like the forward tables, under its own ``rev`` token."""
        own = self._active_session(session)
        token = (
            f"cmpidx-rev:v1:{indexer.cache_token()}:"
            f"{signature_token(value_tree_signature(comparison.source))}"
        )
        return _indexed_blocks(
            comparison.source,
            source_a,
            indexer,
            own.transforms,
            own,
            True,
            token,
        )

    def affected_probe_uids(
        self, source_a, source_b, deltas_a, deltas_b, session=None
    ):
        """Probe-side uids whose candidate sets may have changed.

        The candidate algebra is a monotone function of the
        per-comparison block relations, each of which depends only on
        its two endpoints' values (MultiBlock has no data-dependent
        block-size limit, unlike token blocking), and the set of
        *built* comparisons is a pure function of the rule structure —
        so a pair of two *unchanged* entities can never flip. The
        minimal affected set is therefore empty: the engine unions in
        the changed uids itself, and the pairs of a changed B entity
        with unchanged probe entities are emitted by the targeted
        reverse pass of :meth:`iter_affected_shards` instead of
        re-probing every reverse-index hit in full. Returns None (full
        rescore) when the algebra has a non-selective branch — there
        an inserted or deleted B entity pairs with *every* probe
        entity."""
        dedup = source_a is source_b
        deltas_b = tuple(deltas_a) if dedup else tuple(deltas_b)
        if not deltas_b:
            # Only the probe side changed: unchanged probe entities
            # keep their candidate sets (the target index is frozen).
            return frozenset()
        probe = self.probe_index(source_a, source_b, session=session)
        if not probe.indexes:
            return None

        def selective(node: SimilarityNode) -> bool:
            if isinstance(node, ComparisonNode):
                return id(node) in probe.views
            assert isinstance(node, AggregationNode)
            if node.function == "min":
                return any(selective(child) for child in node.operators)
            return all(selective(child) for child in node.operators)

        if not selective(self._rule.root):
            return None
        return frozenset()

    def iter_affected_shards(
        self, source_a, source_b, affected, batch_size, session=None
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        probe = self.probe_index(source_a, source_b, session=session)
        if not probe.indexes:
            return super().iter_affected_shards(
                source_a, source_b, affected, batch_size, session=session
            )
        return _chunked(
            chain.from_iterable(
                self._iter_affected_pair_lists(
                    source_a, source_b, affected, session, probe
                )
            ),
            batch_size,
        )

    def _iter_affected_pair_lists(
        self, source_a, source_b, affected, session, probe
    ):
        by_code = [source_b.get(uid) for uid in probe.uids]
        dedup = source_a is source_b
        memo: dict = {}
        entities = [
            entity for entity in source_a.entities() if entity.uid in affected
        ]
        ledger = self._probe_ledger(source_a, source_b, session)
        try:
            for start in range(0, len(entities), _PROBE_CHUNK):
                chunk = entities[start : start + _PROBE_CHUNK]
                results = ledger.probe(
                    chunk,
                    lambda miss: self.probe_batch(
                        miss, probe, session, memo=memo
                    ),
                )
                yield from _affected_code_pair_lists(
                    chunk, results, probe.uids, by_code, dedup, affected
                )
        finally:
            ledger.flush()
        if not dedup:
            yield from self._targeted_reverse_pair_lists(
                source_a, source_b, affected, session, probe
            )

    def _targeted_reverse_pair_lists(
        self, source_a, source_b, affected, session, probe
    ):
        """Pairs of *unaffected* probe entities with affected stored
        entities (two-source mode; dedup probes emit both directions
        via :func:`_affected_code_pair_lists`).

        Two-source emission is one-directional — only A probes — so a
        changed B entity's pairs with unchanged A partners never
        surface from the affected probes above. For each affected B
        entity this pass derives a coarse A-partner superset from the
        per-comparison reverse indexes (sound because a candidate pair
        satisfies at least one built comparison's block relation, and
        :meth:`ComparisonIndexer.reverse_probe_keys` over-approximates
        it), then *verifies* exact candidacy by probing those partners
        against the current index and checking the B entity's code in
        their partner-code arrays — emission without verification
        would leak non-candidate pairs and break byte-parity with a
        cold execute. Affected partners are excluded (their own probe
        already emits the pair), keeping every affected pair emitted
        exactly once; verification probes ride the probe-result ledger
        and distinct-value memo like every other probe."""
        own = self._active_session(session)
        transforms = own.transforms
        uids = probe.uids
        get_a = source_a.get
        reverse_tables: dict[int, dict] = {}
        coarse: list[tuple[str, int, list[str]]] = []
        partner_uids: set[str] = set()
        for uid in sorted(affected):
            if uid not in source_b:
                continue
            code = bisect_left(uids, uid)
            if code >= len(uids) or uids[code] != uid:
                continue
            entity_b = source_b.get(uid)
            partners: set[str] = set()
            for node_id, comparison_index in probe.indexes.items():
                comparison = comparison_index.comparison
                indexer = comparison_index.indexer
                reverse = reverse_tables.get(node_id)
                if reverse is None:
                    reverse = self._reverse_blocks(
                        comparison, indexer, source_a, session
                    )
                    reverse_tables[node_id] = reverse
                get = reverse.get
                values = _entity_values(
                    comparison.target, entity_b, transforms, own
                )
                for key in indexer.reverse_probe_keys(values):
                    block = get(key)
                    if block is not None:
                        partners.update(block)
            partners -= affected
            partners.discard(uid)
            if partners:
                coarse.append((uid, code, sorted(partners)))
                partner_uids.update(partners)
        if not coarse:
            return
        entities = [get_a(uid) for uid in sorted(partner_uids)]
        codes_of: dict[str, np.ndarray] = {}
        memo: dict = {}
        ledger = self._probe_ledger(source_a, source_b, session)
        try:
            for start in range(0, len(entities), _PROBE_CHUNK):
                chunk = entities[start : start + _PROBE_CHUNK]
                results = ledger.probe(
                    chunk,
                    lambda miss: self.probe_batch(
                        miss, probe, session, memo=memo
                    ),
                )
                for entity, codes in zip(chunk, results):
                    codes_of[entity.uid] = codes
        finally:
            ledger.flush()
        for uid_b, code_b, partners in coarse:
            entity_b = source_b.get(uid_b)
            pairs = []
            for partner in partners:
                codes = codes_of[partner]
                position = int(np.searchsorted(codes, code_b))
                if position < len(codes) and codes[position] == code_b:
                    pairs.append((get_a(partner), entity_b))
            if pairs:
                yield pairs

    def _probe_ledger(self, source_a, source_b, session) -> _ProbeLedger:
        from repro.core.serialization import rule_to_json
        from repro.engine.store import index_key

        own = self._active_session(session)
        if own.store is None:
            return _ProbeLedger(None, "")
        rule_token = hashlib.sha256(
            rule_to_json(self._rule, indent=None).encode("utf-8")
        ).hexdigest()[:24]
        token = (
            f"multiblock:v1:rule={rule_token}:"
            f"max={self._max_comparisons}|probe-results-v1"
        )
        return _ProbeLedger(own, index_key(source_b.fingerprint(), token))

    def candidates(
        self, source_a: DataSource, source_b: DataSource
    ) -> Iterator[CandidatePair]:
        return self._iter_pairs(source_a, source_b, None)

    def _iter_pairs(self, source_a, source_b, session):
        probe = self.probe_index(source_a, source_b, session=session)
        if not probe.indexes:
            # No indexable comparison: fall back to the (lazy) full
            # product rather than a degenerate everything-matches probe.
            return FullIndexBlocker().candidates(source_a, source_b)
        return chain.from_iterable(
            self._iter_pair_lists(source_a, source_b, session, probe)
        )

    def _iter_pair_lists(self, source_a, source_b, session, probe):
        by_code = [source_b.get(uid) for uid in probe.uids]
        dedup = source_a is source_b
        memo: dict = {}
        entities = source_a.entities()
        ledger = self._probe_ledger(source_a, source_b, session)
        try:
            for start in range(0, len(entities), _PROBE_CHUNK):
                chunk = entities[start : start + _PROBE_CHUNK]
                yield from _code_pair_lists(
                    chunk,
                    ledger.probe(
                        chunk,
                        lambda miss: self.probe_batch(
                            miss, probe, session, memo=memo
                        ),
                    ),
                    probe.uids,
                    by_code,
                    dedup,
                )
        finally:
            ledger.flush()


@dataclass(frozen=True)
class BlockingQuality:
    """Pair-completeness / reduction-ratio of a blocker on a workload."""

    candidate_pairs: int
    total_pairs: int
    covered_matches: int
    total_matches: int

    @property
    def pairs_completeness(self) -> float:
        """Recall of the candidate set over the true matches."""
        if self.total_matches == 0:
            return 1.0
        return self.covered_matches / self.total_matches

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the Cartesian product pruned away."""
        if self.total_pairs == 0:
            return 0.0
        return 1.0 - self.candidate_pairs / self.total_pairs


def blocking_quality(
    blocker: Blocker,
    source_a: DataSource,
    source_b: DataSource,
    true_matches: Iterable[tuple[str, str]],
) -> BlockingQuality:
    """Measure a blocker against known matches (e.g. reference links)."""
    matches = set(true_matches)
    candidate_pairs = 0
    covered: set[tuple[str, str]] = set()
    for entity_a, entity_b in blocker.candidates(source_a, source_b):
        candidate_pairs += 1
        key = (entity_a.uid, entity_b.uid)
        if key in matches:
            covered.add(key)
    return BlockingQuality(
        candidate_pairs=candidate_pairs,
        total_pairs=len(source_a.entities()) * len(source_b.entities()),
        covered_matches=len(covered),
        total_matches=len(matches),
    )
