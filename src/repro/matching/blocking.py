"""Candidate generation (blocking) strategies.

Evaluating a linkage rule over the full Cartesian product A x B is
quadratic; blocking prunes the candidate set before rule evaluation.
Three classic strategies are provided plus a rule-aware blocker that
derives its keys from the properties a rule actually compares — a
light-weight stand-in for Silk's MultiBlock [19] (the full
aggregation-aware variant lives in :mod:`repro.matching.multiblock`).

Blocking is an **engine-integrated subsystem**, not a bare pair
stream:

* :meth:`Blocker.iter_shards` emits candidate pairs pre-chunked into
  ready-to-score shards, so :class:`repro.matching.engine.
  MatchingEngine` hands them straight to executor workers without a
  re-chunking layer. Shard boundaries depend only on ``batch_size``
  and the pair order never depends on it, so links stay byte-identical
  across batch sizes and worker counts.
* :meth:`Blocker.build_index` builds the blocker's reusable
  target-side index **vectorized**: tokenisation / key extraction runs
  once per *distinct value* (not once per entity occurrence), bulk
  dict operations assemble the blocks, and construction fans across
  the engine session's shared-memory executor for large sources.
* :meth:`Blocker.probe_batch` probes the index for a whole A-side
  chunk at once — the probe side mirrors the build side:
  :class:`TokenBlocker` bulk-tokenises the chunk through the same
  C-level lower/translate/split path used for indexing and unions each
  entity's postings lists in a single pass with C-level dedup
  (``dict.fromkeys`` over chained block tuples);
  :class:`SortedNeighbourhoodBlocker` resolves all windows of a chunk
  with vectorized ``numpy.searchsorted`` over its sorted merged
  positions; :class:`~repro.matching.multiblock.MultiBlocker` memoises
  probe results per distinct transformed value tuple. Probe chunks fan
  across the session's shared-memory executor via
  :func:`fan_entity_chunks`, and probe traffic is reported through the
  session (``EngineStats.probe_batches`` / ``probe_memo_hits``,
  surfaced per run in ``MatchStats``).
* With an :class:`~repro.engine.session.EngineSession`, indexes are
  memoised in the session and — when the session has a persistent
  :class:`~repro.engine.store.ColumnStore` — persisted in the store's
  **index tier**, keyed by ``DataSource.fingerprint()`` ×
  :meth:`Blocker.signature`. Warm reruns over unchanged sources then
  skip index construction entirely, the same way they already skip
  distance-column builds.

Indexes reference entities by uid only; the live source resolves uids
back to entities at emission time, which is what makes the persisted
form safe (content fingerprints guarantee the uids still describe the
same entities).
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from itertools import chain, islice, repeat
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.nodes import PropertyNode, TransformationNode, ValueNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.session import EngineSession

CandidatePair = tuple[Entity, Entity]

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)

#: Sources below this size are indexed inline even when the session
#: executor could fan out — the thread hop costs more than the work.
_FAN_THRESHOLD = 512

#: A-side entities probed per :meth:`Blocker.probe_batch` call inside
#: the pair stream. Bounds resident per-entity candidate lists (the
#: stream stays memory-bounded like the per-entity loop it replaced)
#: while amortising batch machinery and giving `fan_entity_chunks`
#: enough work to fan. Never affects results — only how many entities
#: are probed per batch.
_PROBE_CHUNK = 2048

#: Entries kept in a run's probe memo before it is dropped wholesale.
#: The memo caches one partner-code array per distinct probe input, so
#: its footprint is bounded by O(limit x average candidate count);
#: clearing resets hit statistics, never results.
_PROBE_MEMO_LIMIT = 65536

#: Shared empty partner result (probing never mutates code arrays).
_EMPTY_CODES = np.empty(0, dtype=np.int32)


def _union_codes(blocks: list, size: int) -> np.ndarray:
    """Union of sorted unique code blocks, sorted: one concatenate +
    one boolean-mask assignment + one ``flatnonzero`` — three C calls,
    with zero-copy fast paths for zero and one block."""
    if not blocks:
        return _EMPTY_CODES
    if len(blocks) == 1:
        return blocks[0]
    mask = np.zeros(size, dtype=bool)
    mask[np.concatenate(blocks)] = True
    return np.flatnonzero(mask)


def _memo_put(memo: dict, key, value) -> None:
    """Insert into a probe memo, dropping it wholesale at the size
    bound (resets hit statistics, never results)."""
    if len(memo) >= _PROBE_MEMO_LIMIT:
        memo.clear()
    memo[key] = value


def fan_entity_chunks(
    session: "EngineSession | None",
    entities: Sequence[Entity],
    fn: Callable[[Sequence[Entity]], list],
) -> list:
    """Map ``fn`` over contiguous entity chunks, fanned across the
    session's shared-memory executor when one is available.

    ``fn`` receives a chunk and returns a list of per-entity results;
    chunk results are concatenated in chunk order, so the output is
    identical to ``fn(entities)`` whatever the worker count. Falls back
    to one inline call for serial/process executors and small inputs.
    """
    executor = session.executor if session is not None else None
    if (
        executor is None
        or not executor.shares_memory
        or executor.workers < 2
        or len(entities) < _FAN_THRESHOLD
    ):
        return fn(entities)
    workers = executor.workers
    size = (len(entities) + workers - 1) // workers
    chunks = [entities[i : i + size] for i in range(0, len(entities), size)]
    merged: list = []
    for part in executor.map(fn, chunks):
        merged.extend(part)
    return merged


def _code_pair_lists(
    chunk: Sequence[Entity],
    code_lists: Sequence[np.ndarray],
    uids: Sequence[str],
    by_code: Sequence[Entity],
    dedup: bool,
) -> Iterator[list[CandidatePair]]:
    """Per-entity candidate-pair lists from partner-code arrays.

    Codes are sorted in uid order, so the dedup-mode constraint
    (``uid_a < uid_b``) is a suffix — one bisect over the uid table
    plus one searchsorted over the codes — and self-pairs delete in
    one probe. Each entity's pair list is built entirely in C (``zip``
    + ``map`` over the code->entity table), and callers flatten with
    ``chain.from_iterable``, so the pair stream costs no per-pair
    Python bytecode at all. Code arrays are never mutated.
    """
    for entity_a, codes in zip(chunk, code_lists):
        uid_a = entity_a.uid
        if dedup:
            floor = bisect_right(uids, uid_a)
            codes = codes[np.searchsorted(codes, floor) :]
        else:
            i = bisect_left(uids, uid_a)
            if i < len(uids) and uids[i] == uid_a:
                j = int(np.searchsorted(codes, i))
                if j < len(codes) and codes[j] == i:
                    codes = np.delete(codes, j)
        yield list(
            zip(repeat(entity_a), map(by_code.__getitem__, codes.tolist()))
        )


def _chunked(
    pairs: Iterable[CandidatePair], batch_size: int
) -> Iterator[list[CandidatePair]]:
    """Group a pair stream into shards of at most ``batch_size``
    (C-level: one ``islice`` materialisation per shard, no per-pair
    Python bytecode)."""
    iterator = iter(pairs)
    while True:
        shard = list(islice(iterator, batch_size))
        if not shard:
            return
        yield shard


class Blocker(ABC):
    """Produces candidate entity pairs from two data sources."""

    #: Instance memo of the last built index: (source fingerprint,
    #: signature, payload). Lets session-less callers reuse the index
    #: across repeated runs over an unchanged source.
    _index_memo: tuple[str, str, object] | None = None
    #: Same, for the derived probe-side view (separate slot so
    #: alternating build/probe resolution never thrashes either memo).
    _probe_index_memo: tuple[str, str, object] | None = None

    @abstractmethod
    def candidates(
        self, source_a: DataSource, source_b: DataSource
    ) -> Iterator[CandidatePair]:
        """Yield candidate pairs (each pair at most once)."""

    def candidate_count(self, source_a: DataSource, source_b: DataSource) -> int:
        return sum(1 for _ in self.candidates(source_a, source_b))

    def signature(self) -> str | None:
        """Stable identity of the index this blocker builds over a
        target source, or None when it builds no (persistable) index.

        The persistent index tier keys on
        ``DataSource.fingerprint() x signature()``, so the signature
        must change whenever construction parameters that affect the
        index content change, and must be stable across processes
        (no ``id()``, no hash randomisation).
        """
        return None

    def build_index(
        self, source: DataSource, session: "EngineSession | None" = None
    ) -> object | None:
        """Build (or load) this blocker's reusable index over a target
        source; None for blockers that don't index.

        With a ``session`` the index resolves through the session's
        index memo and — when the session has a persistent store — the
        store's index tier. Without one, the blocker keeps a
        one-entry instance memo keyed by the source's content
        fingerprint, so repeated runs over an unchanged source still
        reuse the index.
        """
        return None

    def iter_shards(
        self,
        source_a: DataSource,
        source_b: DataSource,
        batch_size: int,
        session: "EngineSession | None" = None,
    ) -> Iterator[list[CandidatePair]]:
        """Candidate pairs pre-chunked into ready-to-score shards.

        The pair order is exactly :meth:`candidates` order and does not
        depend on ``batch_size`` (only the chunk boundaries do), which
        is what keeps generated links byte-identical across batch
        sizes and worker counts. ``session`` lets index construction
        share the engine's caches; the default implementation chunks
        the plain pair stream.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return _chunked(self._iter_pairs(source_a, source_b, session), batch_size)

    def _iter_pairs(
        self,
        source_a: DataSource,
        source_b: DataSource,
        session: "EngineSession | None",
    ) -> Iterator[CandidatePair]:
        """Session-aware pair stream; the default ignores the session."""
        return self.candidates(source_a, source_b)

    def probe_index(
        self,
        source_a: DataSource,
        source_b: DataSource,
        session: "EngineSession | None" = None,
    ) -> object:
        """The probe-side state of this blocker over a source pairing
        (the argument :meth:`probe_batch` expects as ``index``).

        Builds on :meth:`build_index` — token blocking derives an
        integer *code view* of its block table (one code per distinct
        B uid, in sorted uid order, each block a sorted ``int32`` code
        array) so batch probing unions postings with numpy instead of
        per-uid Python; sorted neighbourhood precomputes the merged
        key positions of both sides. Token and MultiBlock resolve
        their derived views through the same session index memo /
        persistent index tier as the block tables themselves; sorted
        neighbourhood re-derives its positions per run (they hold live
        entity references and cost only two searchsorted calls over
        the already-memoised sorted indexes).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batch probe path"
        )

    def probe_batch(
        self,
        entities: Sequence[Entity],
        index: object,
        session: "EngineSession | None" = None,
    ) -> list[Sequence]:
        """Candidate B-side partners for a whole chunk of probe
        entities, against this blocker's :meth:`probe_index`.

        Returns one partner sequence per probe entity, in input order:
        already partner-deduped, in the blocker's deterministic
        emission order, **unfiltered** — self-pairs and dedup-mode
        ordering are the caller's concern (:meth:`_iter_pairs` applies
        them), so parity suites can compare raw probe results
        directly. Partners are *references into the probe index* (code
        arrays for token/MultiBlock probing, uid slices for sorted
        neighbourhood); :meth:`probe_uids` materialises the uid view.

        With a ``session``, chunks fan across its shared-memory
        executor (:func:`fan_entity_chunks`) and probe traffic is
        recorded in the session's probe counters. Results never depend
        on the session, the worker count, or how entities are chunked
        across calls.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batch probe path"
        )

    def probe_uids(self, index: object, partners: Sequence) -> tuple[str, ...]:
        """The uid view of one entity's :meth:`probe_batch` result."""
        raise NotImplementedError(
            f"{type(self).__name__} has no batch probe path"
        )

    def _resolve_index(
        self,
        source: DataSource,
        session: "EngineSession | None",
        build: Callable[[], object],
    ) -> object:
        """Index lookup through the session memo / persistent tier /
        the blocker's own one-entry memo, building on miss."""
        token = self.signature()
        if token is None:
            return build()
        if session is not None:
            return session.blocking_index(source.fingerprint(), token, build)
        fingerprint = source.fingerprint()
        memo = self._index_memo
        if memo is not None and memo[0] == fingerprint and memo[1] == token:
            return memo[2]
        payload = build()
        self._index_memo = (fingerprint, token, payload)
        return payload

    def _resolve_probe_index(
        self,
        source: DataSource,
        session: "EngineSession | None",
        token: str,
        build: Callable[[], object],
    ) -> object:
        """Probe-view lookup, mirroring :meth:`_resolve_index` with an
        explicit token and its own instance-memo slot: session memo /
        persistent index tier when a session is available, a one-entry
        fingerprint-keyed memo otherwise."""
        if session is not None:
            return session.blocking_index(source.fingerprint(), token, build)
        fingerprint = source.fingerprint()
        memo = self._probe_index_memo
        if memo is not None and memo[0] == fingerprint and memo[1] == token:
            return memo[2]
        payload = build()
        self._probe_index_memo = (fingerprint, token, payload)
        return payload


class FullIndexBlocker(Blocker):
    """The full Cartesian product — exact but quadratic.

    For deduplication (both sources identical) only unordered pairs
    ``(i, j)`` with ``i < j`` are produced. Both the pair stream and
    the shard stream are fully lazy: nothing quadratic is materialised
    ahead of consumption, so a streaming consumer stays memory-bounded
    even on sources whose cross product would not fit in memory.
    """

    def candidates(self, source_a, source_b):
        if source_a is source_b:
            entities = source_a.entities()
            for i, entity_a in enumerate(entities):
                # islice, not a slice: entities[i+1:] would copy O(n^2)
                # references across the whole iteration.
                for entity_b in islice(entities, i + 1, None):
                    yield entity_a, entity_b
            return
        entities_b = source_b.entities()
        for entity_a in source_a:
            for entity_b in entities_b:
                yield entity_a, entity_b

    def candidate_count(self, source_a: DataSource, source_b: DataSource) -> int:
        # Closed form — benchmarks and blocking-quality reports call
        # this on full Cartesian products, where iterating is quadratic.
        if source_a is source_b:
            n = len(source_a.entities())
            return n * (n - 1) // 2
        return len(source_a.entities()) * len(source_b.entities())



def _tokens_of(entity: Entity, properties: Iterable[str]) -> set[str]:
    """Token set of one entity (the seed per-entity path, kept for
    reference/tests; the blockers tokenise in bulk — see
    :func:`_text_tokens`)."""
    tokens: set[str] = set()
    for name in properties:
        for value in entity.values(name):
            tokens.update(t.lower() for t in _TOKEN_RE.findall(value))
    return tokens


#: ASCII fast path for tokenisation: every ASCII codepoint that is not
#: alphanumeric maps to a space (including ``_``, which ``[^\W_]+``
#: excludes from tokens); ``str.translate`` + ``str.split`` then
#: tokenise an entire entity's text in C. Uppercase needs no mapping —
#: the text is lowercased first.
_ASCII_TOKEN_TABLE = {
    i: " " for i in range(128) if not chr(i).isalnum()
}


def _text_tokens(text: str) -> list[str]:
    """Lowercased word tokens of a text, in text order (duplicates
    kept; callers dedup with ``dict.fromkeys`` where order matters).

    ASCII text — the overwhelming share of real sources — tokenises
    entirely in C (lower + translate + split), where lowering first is
    provably boundary-preserving. Anything else tokenises *before*
    lowering, exactly like :func:`_tokens_of`: lowering can decompose
    characters into combining marks ('İ' → 'i' + U+0307) that would
    otherwise split a token mid-word.
    """
    if text.isascii():
        return text.lower().translate(_ASCII_TOKEN_TABLE).split()
    return [token.lower() for token in _TOKEN_RE.findall(text)]


def _entity_text(entity: Entity, properties: Sequence[str]) -> str:
    """All of an entity's values on ``properties``, space-joined.

    One joined string means one tokenisation call per entity instead of
    one per value; the space separator is a token boundary in both
    tokenisation paths, so the token stream equals the concatenation of
    the per-value streams.
    """
    values = entity.properties
    parts: list[str] = []
    for name in properties:
        entity_values = values.get(name)
        if entity_values:
            parts.extend(entity_values)
    return " ".join(parts)


@dataclass(frozen=True)
class _TokenProbeIndex:
    """Integer code view of one token block table.

    Codes number the distinct B uids appearing in any block, in sorted
    uid order — so sorted code arrays are sorted uid sequences, and the
    dedup-mode ordering constraint becomes a suffix slice. Blocks are
    sorted unique ``int32`` arrays; the whole view pickles, so it
    persists in the store's index tier alongside the raw block table.
    """

    #: code -> uid, ascending.
    uids: tuple[str, ...]
    #: token -> sorted unique codes of the B entities filed under it.
    blocks: dict
    #: Code-space size (mask length for the postings union).
    size: int


def _token_code_payload(blocks: dict) -> tuple[tuple[str, ...], dict]:
    """Derive the probe-side code view from a raw token block table.

    Returned as a plain ``(uids, code blocks)`` tuple — the form the
    persistent index tier pickles stays free of private classes, so
    old blobs survive refactors (an unreadable blob is just a miss).
    """
    uids = sorted(set(chain.from_iterable(blocks.values())))
    code_of = {uid: code for code, uid in enumerate(uids)}
    code_blocks = {
        token: np.unique(
            np.fromiter(
                (code_of[uid] for uid in block),
                dtype=np.int32,
                count=len(block),
            )
        )
        for token, block in blocks.items()
    }
    return tuple(uids), code_blocks


class TokenBlocker(Blocker):
    """Standard token blocking: pairs sharing a token on key properties.

    ``max_block_size`` drops high-frequency tokens (stop words) whose
    blocks would reintroduce quadratic behaviour. Probing is batch
    (:meth:`probe_batch`, over the :meth:`probe_index` code view):
    candidates are emitted grouped per A entity in source order, each
    entity's partners in sorted uid order — the same deterministic
    stream for every chunking, worker count and batch size.
    """

    def __init__(
        self,
        properties_a: Iterable[str],
        properties_b: Iterable[str] | None = None,
        max_block_size: int = 200,
    ):
        self._properties_a = list(properties_a)
        self._properties_b = (
            list(properties_b) if properties_b is not None else self._properties_a
        )
        self._max_block_size = max_block_size

    def signature(self) -> str:
        return (
            f"token-index:v1:props={sorted(self._properties_b)!r}:"
            f"max={self._max_block_size}"
        )

    def build_index(self, source, session=None):
        """Token index of a target source: ``{token: (uids...)}`` in
        source order, with oversized (stop-word) blocks dropped."""
        return self._resolve_index(
            source, session, lambda: self._build_blocks(source, session)
        )

    def _build_blocks(self, source: DataSource, session) -> dict:
        properties = self._properties_b

        def extract(chunk):
            return [
                (entity.uid, _text_tokens(_entity_text(entity, properties)))
                for entity in chunk
            ]

        per_entity = fan_entity_chunks(session, source.entities(), extract)
        # Single pass straight into the blocks; per-entity token dedup
        # is deferred to one C-level dict.fromkeys per block below,
        # which must run before the stop-word size filter (an entity
        # repeating a token must not push its block over the limit).
        blocks: dict[str, list[str]] = {}
        get = blocks.get
        for uid, tokens in per_entity:
            for token in tokens:
                block = get(token)
                if block is None:
                    blocks[token] = [uid]
                else:
                    block.append(uid)
        limit = self._max_block_size
        out: dict[str, tuple[str, ...]] = {}
        for token, uids in blocks.items():
            deduped = dict.fromkeys(uids)
            if len(deduped) <= limit:
                out[token] = tuple(deduped)
        return out

    def candidates(self, source_a, source_b):
        return self._iter_pairs(source_a, source_b, None)

    def probe_index(self, source_a, source_b, session=None):
        """Code view of the target block table: distinct B uids number
        into sorted-uid order, each block becomes a sorted ``int32``
        code array. Resolves through the same memo / persistent index
        tier as the block table itself (key suffix ``probe-codes-v1``),
        so warm sessions and warm stores skip the derivation."""
        # The raw block table is only materialised inside the builder:
        # a probe-view hit (warm session or warm store) never loads it.
        uids, blocks = self._resolve_probe_index(
            source_b,
            session,
            f"{self.signature()}|probe-codes-v1",
            lambda: _token_code_payload(
                self.build_index(source_b, session=session)
            ),
        )
        return _TokenProbeIndex(uids=uids, blocks=blocks, size=len(uids))

    def probe_batch(self, entities, index, session=None, memo=None):
        """Batch token probe: bulk tokenisation (the same C-level
        lower/translate/split path the index build uses) plus one
        single-pass postings-union per entity — a boolean mask over the
        code space absorbs every block in C and ``flatnonzero`` reads
        the union back sorted (an entity probing a single block reuses
        the index's own array, zero-copy). Probe results memoise per
        distinct property text (``memo``; ``_iter_pairs`` threads one
        through the whole run), so duplicate-heavy sources skip
        tokenisation *and* the union."""
        properties = self._properties_a
        get = index.blocks.get
        size = index.size
        shared_memo = memo if memo is not None else {}

        def probe(chunk):
            hits = 0
            results = []
            for entity in chunk:
                text = _entity_text(entity, properties)
                codes = shared_memo.get(text)
                if codes is not None:
                    hits += 1
                    results.append(codes)
                    continue
                blocks = []
                for token in dict.fromkeys(_text_tokens(text)):
                    block = get(token)
                    if block is not None:
                        blocks.append(block)
                codes = _union_codes(blocks, size)
                _memo_put(shared_memo, text, codes)
                results.append(codes)
            if session is not None and hits:
                session.record_probe(memo_hits=hits)
            return results

        if session is not None:
            session.record_probe(batches=1)
        return fan_entity_chunks(session, entities, probe)

    def probe_uids(self, index, partners):
        return tuple(map(index.uids.__getitem__, partners.tolist()))

    def _iter_pairs(self, source_a, source_b, session):
        return chain.from_iterable(
            self._iter_pair_lists(source_a, source_b, session)
        )

    def _iter_pair_lists(self, source_a, source_b, session):
        index = self.probe_index(source_a, source_b, session=session)
        dedup = source_a is source_b
        uids = index.uids
        get_b = source_b.get
        # Entities resolve by integer code (one list index per pair)
        # instead of by uid string.
        by_code = [get_b(uid) for uid in uids]
        entities = source_a.entities()
        memo: dict = {}
        for start in range(0, len(entities), _PROBE_CHUNK):
            chunk = entities[start : start + _PROBE_CHUNK]
            yield from _code_pair_lists(
                chunk,
                self.probe_batch(chunk, index, session, memo=memo),
                uids,
                by_code,
                dedup,
            )


@dataclass(frozen=True)
class _SnbProbeState:
    """Precomputed probe geometry of one sorted-neighbourhood pairing.

    Positions are indices into the stable merged key order (A before B
    on ties). ``partner_positions`` is sorted ascending — that is what
    lets :meth:`SortedNeighbourhoodBlocker.probe_batch` resolve every
    window with one vectorized ``numpy.searchsorted``.
    """

    dedup: bool
    #: Probe entities in merged order (dedup: every entity; two-source:
    #: the A side) — the deterministic emission order of the blocker.
    probe_entities: list[Entity]
    #: Merged position per probe entity, aligned with probe_entities.
    positions: np.ndarray
    #: uid -> merged position, so arbitrary entity chunks can probe.
    position_of: dict[str, int]
    #: Merged positions of the partner side, sorted ascending.
    partner_positions: np.ndarray
    #: Partner uids aligned with partner_positions.
    partner_uids: list[str]


def _key_arrays(
    keys_a: Sequence[str], keys_b: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-key arrays for vectorized merging.

    Fixed-width ``U`` dtype compares codepoint-lexicographically like
    Python ``str`` — except embedded NULs (numpy pads with NUL and
    strips trailing ones), so those pathological keys demote both
    sides to object arrays (exact Python comparisons, still one
    C-level searchsorted loop).
    """
    if any("\x00" in key for key in keys_a) or any(
        "\x00" in key for key in keys_b
    ):
        dtype: object = object
    else:
        dtype = np.str_
    return np.array(keys_a, dtype=dtype), np.array(keys_b, dtype=dtype)


class SortedNeighbourhoodBlocker(Blocker):
    """Sorted neighbourhood: sort by a key property, slide a window.

    The per-source index is the key-sorted ``(key, uid)`` list; two
    sources merge stably (ties keep A-then-B order, matching a stable
    sort of the concatenated list), so the candidate *set* is identical
    to the seed sliding-window implementation while each side's sort is
    reusable and persistable on its own. Probing is batch
    (:meth:`probe_batch`): windows resolve via vectorized
    ``numpy.searchsorted`` over the merged positions, and candidates
    are emitted grouped per probe entity in merged order — the same
    deterministic stream for every chunking, worker count and batch
    size.
    """

    def __init__(self, key_property: str, window: int = 10):
        if window < 2:
            raise ValueError("window must be >= 2")
        self._key_property = key_property
        self._window = window

    def signature(self) -> str:
        # The window is a probe-time parameter: every window shares the
        # same sorted index.
        return f"snb-index:v1:key={self._key_property!r}"

    def _key(self, entity: Entity) -> str:
        values = entity.values(self._key_property)
        return values[0].lower() if values else ""

    def build_index(self, source, session=None):
        """Key-sorted ``((key, uid), ...)`` of one source (stable: tie
        order is source insertion order)."""

        def build():
            key_property = self._key_property

            def extract(chunk):
                out = []
                for entity in chunk:
                    values = entity.values(key_property)
                    out.append(
                        (values[0].lower() if values else "", entity.uid)
                    )
                return out

            keyed = fan_entity_chunks(session, source.entities(), extract)
            keyed.sort(key=lambda item: item[0])
            return tuple(keyed)

        return self._resolve_index(source, session, build)

    def candidates(self, source_a, source_b):
        return self._iter_pairs(source_a, source_b, None)

    def probe_index(
        self, source_a, source_b, session: "EngineSession | None" = None
    ) -> "_SnbProbeState":
        """The probe-side state over a source pairing: merged positions
        of both sides in the stable A-then-B key order, precomputed so
        :meth:`probe_batch` resolves every window with vectorized
        ``numpy.searchsorted`` instead of a Python merge + sliding
        window.

        The merge itself is vectorized: A's merged position is its own
        rank plus the count of strictly-smaller B keys
        (``searchsorted(..., "left")``); B's is its rank plus the count
        of smaller-or-equal A keys (``"right"`` — ties take A first),
        which reproduces the stable concat-sort order exactly.

        The state holds live entity references, so it is re-derived
        per run rather than memoised/persisted — the expensive part
        (each side's key sort) already resolves through
        :meth:`build_index`'s memo and the persistent index tier.
        """
        dedup = source_a is source_b
        index_a = self.build_index(source_a, session=session)
        if dedup:
            uids = [uid for __, uid in index_a]
            n = len(uids)
            return _SnbProbeState(
                dedup=True,
                probe_entities=[source_a.get(uid) for uid in uids],
                positions=np.arange(n, dtype=np.int64),
                position_of={uid: i for i, uid in enumerate(uids)},
                partner_positions=np.arange(n, dtype=np.int64),
                partner_uids=uids,
            )
        index_b = self.build_index(source_b, session=session)
        keys_a, keys_b = _key_arrays(
            [key for key, __ in index_a], [key for key, __ in index_b]
        )
        positions_a = np.arange(len(keys_a), dtype=np.int64) + np.searchsorted(
            keys_b, keys_a, side="left"
        )
        positions_b = np.arange(len(keys_b), dtype=np.int64) + np.searchsorted(
            keys_a, keys_b, side="right"
        )
        uids_a = [uid for __, uid in index_a]
        return _SnbProbeState(
            dedup=False,
            probe_entities=[source_a.get(uid) for uid in uids_a],
            positions=positions_a,
            position_of={uid: int(pos) for uid, pos in zip(uids_a, positions_a)},
            partner_positions=positions_b,
            partner_uids=[uid for __, uid in index_b],
        )

    def probe_batch(self, entities, index, session=None):
        """Batch window probe: all windows of a chunk resolve through
        one vectorized ``numpy.searchsorted`` over the sorted partner
        positions (two-source mode probes ``window - 1`` positions to
        either side; dedup mode slices the forward window only, each
        unordered pair once)."""
        state: _SnbProbeState = index
        window = self._window

        def probe(chunk):
            positions = np.fromiter(
                (state.position_of[entity.uid] for entity in chunk),
                dtype=np.int64,
                count=len(chunk),
            )
            partner_uids = state.partner_uids
            if state.dedup:
                low = positions + 1
                high = np.minimum(positions + window, len(partner_uids))
            else:
                partner_positions = state.partner_positions
                low = np.searchsorted(
                    partner_positions, positions - (window - 1), side="left"
                )
                high = np.searchsorted(
                    partner_positions, positions + window, side="left"
                )
            return [
                partner_uids[lo:hi]
                for lo, hi in zip(low.tolist(), high.tolist())
            ]

        if session is not None:
            session.record_probe(batches=1)
        return fan_entity_chunks(session, entities, probe)

    def probe_uids(self, index, partners):
        return tuple(partners)

    def _iter_pairs(self, source_a, source_b, session):
        state = self.probe_index(source_a, source_b, session=session)
        entities = state.probe_entities
        get_a = source_a.get
        get_b = source_b.get
        for start in range(0, len(entities), _PROBE_CHUNK):
            chunk = entities[start : start + _PROBE_CHUNK]
            for entity_i, uids in zip(
                chunk, self.probe_batch(chunk, state, session)
            ):
                if state.dedup:
                    # Each unordered pair once (forward window); the
                    # emitted pair is uid-ordered like the seed.
                    uid_i = entity_i.uid
                    for uid_j in uids:
                        if uid_i < uid_j:
                            yield entity_i, get_a(uid_j)
                        else:
                            yield get_a(uid_j), entity_i
                else:
                    yield from zip(repeat(entity_i), map(get_b, uids))


def _root_property(node: ValueNode) -> str | None:
    """The left-most property a value tree reads, if any."""
    while isinstance(node, TransformationNode):
        node = node.inputs[0]
    if isinstance(node, PropertyNode):
        return node.property_name
    return None


class RuleBlocker(Blocker):
    """Rule-aware blocking: token-block on the properties the rule
    compares (the MultiBlock idea, simplified).

    Every comparison contributes its source/target property pair as a
    blocking key, so any pair the rule could plausibly match shares at
    least one token on at least one compared property.
    """

    def __init__(self, rule: LinkageRule, max_block_size: int = 200):
        properties_a: list[str] = []
        properties_b: list[str] = []
        for comparison in rule.comparisons():
            prop_a = _root_property(comparison.source)
            prop_b = _root_property(comparison.target)
            if prop_a is not None and prop_b is not None:
                properties_a.append(prop_a)
                properties_b.append(prop_b)
        if not properties_a:
            raise ValueError("rule has no property-based comparisons to block on")
        self._delegate = TokenBlocker(
            properties_a, properties_b, max_block_size=max_block_size
        )

    def signature(self) -> str:
        return self._delegate.signature()

    def build_index(self, source, session=None):
        return self._delegate.build_index(source, session=session)

    def probe_index(self, source_a, source_b, session=None):
        return self._delegate.probe_index(source_a, source_b, session=session)

    def probe_batch(self, entities, index, session=None):
        return self._delegate.probe_batch(entities, index, session=session)

    def probe_uids(self, index, partners):
        return self._delegate.probe_uids(index, partners)

    def candidates(self, source_a, source_b):
        return self._delegate.candidates(source_a, source_b)

    def _iter_pairs(self, source_a, source_b, session):
        return self._delegate._iter_pairs(source_a, source_b, session)
