"""Candidate generation (blocking) strategies.

Evaluating a linkage rule over the full Cartesian product A x B is
quadratic; blocking prunes the candidate set before rule evaluation.
Three classic strategies are provided plus a rule-aware blocker that
derives its keys from the properties a rule actually compares — a
light-weight stand-in for Silk's MultiBlock [19].
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.core.nodes import PropertyNode, TransformationNode, ValueNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource

CandidatePair = tuple[Entity, Entity]

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)


class Blocker(ABC):
    """Produces candidate entity pairs from two data sources."""

    @abstractmethod
    def candidates(
        self, source_a: DataSource, source_b: DataSource
    ) -> Iterator[CandidatePair]:
        """Yield candidate pairs (each pair at most once)."""

    def candidate_count(self, source_a: DataSource, source_b: DataSource) -> int:
        return sum(1 for _ in self.candidates(source_a, source_b))


class FullIndexBlocker(Blocker):
    """The full Cartesian product — exact but quadratic.

    For deduplication (both sources identical) only unordered pairs
    ``(i, j)`` with ``i < j`` are produced.
    """

    def candidates(self, source_a, source_b):
        if source_a is source_b:
            entities = source_a.entities()
            for i, entity_a in enumerate(entities):
                for entity_b in entities[i + 1 :]:
                    yield entity_a, entity_b
            return
        for entity_a in source_a:
            for entity_b in source_b:
                yield entity_a, entity_b

    def candidate_count(self, source_a: DataSource, source_b: DataSource) -> int:
        # Closed form — benchmarks and blocking-quality reports call
        # this on full Cartesian products, where iterating is quadratic.
        if source_a is source_b:
            n = len(source_a.entities())
            return n * (n - 1) // 2
        return len(source_a.entities()) * len(source_b.entities())


def _tokens_of(entity: Entity, properties: Iterable[str]) -> set[str]:
    tokens: set[str] = set()
    for name in properties:
        for value in entity.values(name):
            tokens.update(t.lower() for t in _TOKEN_RE.findall(value))
    return tokens


class TokenBlocker(Blocker):
    """Standard token blocking: pairs sharing a token on key properties.

    ``max_block_size`` drops high-frequency tokens (stop words) whose
    blocks would reintroduce quadratic behaviour.
    """

    def __init__(
        self,
        properties_a: Iterable[str],
        properties_b: Iterable[str] | None = None,
        max_block_size: int = 200,
    ):
        self._properties_a = list(properties_a)
        self._properties_b = (
            list(properties_b) if properties_b is not None else self._properties_a
        )
        self._max_block_size = max_block_size

    def candidates(self, source_a, source_b):
        index: dict[str, list[Entity]] = {}
        for entity_b in source_b:
            for token in _tokens_of(entity_b, self._properties_b):
                index.setdefault(token, []).append(entity_b)
        dedup = source_a is source_b
        seen: set[tuple[str, str]] = set()
        for entity_a in source_a:
            for token in _tokens_of(entity_a, self._properties_a):
                block = index.get(token)
                if block is None or len(block) > self._max_block_size:
                    continue
                for entity_b in block:
                    if dedup:
                        if entity_a.uid >= entity_b.uid:
                            continue
                    elif entity_a.uid == entity_b.uid:
                        continue
                    key = (entity_a.uid, entity_b.uid)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield entity_a, entity_b


class SortedNeighbourhoodBlocker(Blocker):
    """Sorted neighbourhood: sort by a key property, slide a window."""

    def __init__(self, key_property: str, window: int = 10):
        if window < 2:
            raise ValueError("window must be >= 2")
        self._key_property = key_property
        self._window = window

    def _key(self, entity: Entity) -> str:
        values = entity.values(self._key_property)
        return values[0].lower() if values else ""

    def candidates(self, source_a, source_b):
        dedup = source_a is source_b
        if dedup:
            ordered = sorted(source_a.entities(), key=self._key)
            tagged = [(entity, "a") for entity in ordered]
        else:
            tagged = sorted(
                [(entity, "a") for entity in source_a]
                + [(entity, "b") for entity in source_b],
                key=lambda pair: self._key(pair[0]),
            )
        seen: set[tuple[str, str]] = set()
        for i, (entity_i, side_i) in enumerate(tagged):
            for j in range(i + 1, min(i + self._window, len(tagged))):
                entity_j, side_j = tagged[j]
                if dedup:
                    a, b = sorted((entity_i, entity_j), key=lambda e: e.uid)
                elif side_i == "a" and side_j == "b":
                    a, b = entity_i, entity_j
                elif side_i == "b" and side_j == "a":
                    a, b = entity_j, entity_i
                else:
                    continue
                key = (a.uid, b.uid)
                if key not in seen:
                    seen.add(key)
                    yield a, b


def _root_property(node: ValueNode) -> str | None:
    """The left-most property a value tree reads, if any."""
    while isinstance(node, TransformationNode):
        node = node.inputs[0]
    if isinstance(node, PropertyNode):
        return node.property_name
    return None


class RuleBlocker(Blocker):
    """Rule-aware blocking: token-block on the properties the rule
    compares (the MultiBlock idea, simplified).

    Every comparison contributes its source/target property pair as a
    blocking key, so any pair the rule could plausibly match shares at
    least one token on at least one compared property.
    """

    def __init__(self, rule: LinkageRule, max_block_size: int = 200):
        properties_a: list[str] = []
        properties_b: list[str] = []
        for comparison in rule.comparisons():
            prop_a = _root_property(comparison.source)
            prop_b = _root_property(comparison.target)
            if prop_a is not None and prop_b is not None:
                properties_a.append(prop_a)
                properties_b.append(prop_b)
        if not properties_a:
            raise ValueError("rule has no property-based comparisons to block on")
        self._delegate = TokenBlocker(
            properties_a, properties_b, max_block_size=max_block_size
        )

    def candidates(self, source_a, source_b):
        return self._delegate.candidates(source_a, source_b)
