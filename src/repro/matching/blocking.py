"""Candidate generation (blocking) strategies.

Evaluating a linkage rule over the full Cartesian product A x B is
quadratic; blocking prunes the candidate set before rule evaluation.
Three classic strategies are provided plus a rule-aware blocker that
derives its keys from the properties a rule actually compares — a
light-weight stand-in for Silk's MultiBlock [19] (the full
aggregation-aware variant lives in :mod:`repro.matching.multiblock`).

Blocking is an **engine-integrated subsystem**, not a bare pair
stream:

* :meth:`Blocker.iter_shards` emits candidate pairs pre-chunked into
  ready-to-score shards, so :class:`repro.matching.engine.
  MatchingEngine` hands them straight to executor workers without a
  re-chunking layer. Shard boundaries depend only on ``batch_size``
  and the pair order never depends on it, so links stay byte-identical
  across batch sizes and worker counts.
* :meth:`Blocker.build_index` builds the blocker's reusable
  target-side index **vectorized**: tokenisation / key extraction runs
  once per *distinct value* (not once per entity occurrence), bulk
  dict operations assemble the blocks, and construction fans across
  the engine session's shared-memory executor for large sources.
* With an :class:`~repro.engine.session.EngineSession`, indexes are
  memoised in the session and — when the session has a persistent
  :class:`~repro.engine.store.ColumnStore` — persisted in the store's
  **index tier**, keyed by ``DataSource.fingerprint()`` ×
  :meth:`Blocker.signature`. Warm reruns over unchanged sources then
  skip index construction entirely, the same way they already skip
  distance-column builds.

Indexes reference entities by uid only; the live source resolves uids
back to entities at emission time, which is what makes the persisted
form safe (content fingerprints guarantee the uids still describe the
same entities).
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.core.nodes import PropertyNode, TransformationNode, ValueNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.session import EngineSession

CandidatePair = tuple[Entity, Entity]

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)

#: Sources below this size are indexed inline even when the session
#: executor could fan out — the thread hop costs more than the work.
_FAN_THRESHOLD = 512


def fan_entity_chunks(
    session: "EngineSession | None",
    entities: Sequence[Entity],
    fn: Callable[[Sequence[Entity]], list],
) -> list:
    """Map ``fn`` over contiguous entity chunks, fanned across the
    session's shared-memory executor when one is available.

    ``fn`` receives a chunk and returns a list of per-entity results;
    chunk results are concatenated in chunk order, so the output is
    identical to ``fn(entities)`` whatever the worker count. Falls back
    to one inline call for serial/process executors and small inputs.
    """
    executor = session.executor if session is not None else None
    if (
        executor is None
        or not executor.shares_memory
        or executor.workers < 2
        or len(entities) < _FAN_THRESHOLD
    ):
        return fn(entities)
    workers = executor.workers
    size = (len(entities) + workers - 1) // workers
    chunks = [entities[i : i + size] for i in range(0, len(entities), size)]
    merged: list = []
    for part in executor.map(fn, chunks):
        merged.extend(part)
    return merged


def _chunked(
    pairs: Iterable[CandidatePair], batch_size: int
) -> Iterator[list[CandidatePair]]:
    """Group a pair stream into shards of at most ``batch_size``."""
    shard: list[CandidatePair] = []
    for pair in pairs:
        shard.append(pair)
        if len(shard) >= batch_size:
            yield shard
            shard = []
    if shard:
        yield shard


class Blocker(ABC):
    """Produces candidate entity pairs from two data sources."""

    #: Instance memo of the last built index: (source fingerprint,
    #: signature, payload). Lets session-less callers reuse the index
    #: across repeated runs over an unchanged source.
    _index_memo: tuple[str, str, object] | None = None

    @abstractmethod
    def candidates(
        self, source_a: DataSource, source_b: DataSource
    ) -> Iterator[CandidatePair]:
        """Yield candidate pairs (each pair at most once)."""

    def candidate_count(self, source_a: DataSource, source_b: DataSource) -> int:
        return sum(1 for _ in self.candidates(source_a, source_b))

    def signature(self) -> str | None:
        """Stable identity of the index this blocker builds over a
        target source, or None when it builds no (persistable) index.

        The persistent index tier keys on
        ``DataSource.fingerprint() x signature()``, so the signature
        must change whenever construction parameters that affect the
        index content change, and must be stable across processes
        (no ``id()``, no hash randomisation).
        """
        return None

    def build_index(
        self, source: DataSource, session: "EngineSession | None" = None
    ) -> object | None:
        """Build (or load) this blocker's reusable index over a target
        source; None for blockers that don't index.

        With a ``session`` the index resolves through the session's
        index memo and — when the session has a persistent store — the
        store's index tier. Without one, the blocker keeps a
        one-entry instance memo keyed by the source's content
        fingerprint, so repeated runs over an unchanged source still
        reuse the index.
        """
        return None

    def iter_shards(
        self,
        source_a: DataSource,
        source_b: DataSource,
        batch_size: int,
        session: "EngineSession | None" = None,
    ) -> Iterator[list[CandidatePair]]:
        """Candidate pairs pre-chunked into ready-to-score shards.

        The pair order is exactly :meth:`candidates` order and does not
        depend on ``batch_size`` (only the chunk boundaries do), which
        is what keeps generated links byte-identical across batch
        sizes and worker counts. ``session`` lets index construction
        share the engine's caches; the default implementation chunks
        the plain pair stream.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return _chunked(self._iter_pairs(source_a, source_b, session), batch_size)

    def _iter_pairs(
        self,
        source_a: DataSource,
        source_b: DataSource,
        session: "EngineSession | None",
    ) -> Iterator[CandidatePair]:
        """Session-aware pair stream; the default ignores the session."""
        return self.candidates(source_a, source_b)

    def _resolve_index(
        self,
        source: DataSource,
        session: "EngineSession | None",
        build: Callable[[], object],
    ) -> object:
        """Index lookup through the session memo / persistent tier /
        the blocker's own one-entry memo, building on miss."""
        token = self.signature()
        if token is None:
            return build()
        if session is not None:
            return session.blocking_index(source.fingerprint(), token, build)
        fingerprint = source.fingerprint()
        memo = self._index_memo
        if memo is not None and memo[0] == fingerprint and memo[1] == token:
            return memo[2]
        payload = build()
        self._index_memo = (fingerprint, token, payload)
        return payload


class FullIndexBlocker(Blocker):
    """The full Cartesian product — exact but quadratic.

    For deduplication (both sources identical) only unordered pairs
    ``(i, j)`` with ``i < j`` are produced. Both the pair stream and
    the shard stream are fully lazy: nothing quadratic is materialised
    ahead of consumption, so a streaming consumer stays memory-bounded
    even on sources whose cross product would not fit in memory.
    """

    def candidates(self, source_a, source_b):
        if source_a is source_b:
            entities = source_a.entities()
            for i, entity_a in enumerate(entities):
                # islice, not a slice: entities[i+1:] would copy O(n^2)
                # references across the whole iteration.
                for entity_b in islice(entities, i + 1, None):
                    yield entity_a, entity_b
            return
        entities_b = source_b.entities()
        for entity_a in source_a:
            for entity_b in entities_b:
                yield entity_a, entity_b

    def candidate_count(self, source_a: DataSource, source_b: DataSource) -> int:
        # Closed form — benchmarks and blocking-quality reports call
        # this on full Cartesian products, where iterating is quadratic.
        if source_a is source_b:
            n = len(source_a.entities())
            return n * (n - 1) // 2
        return len(source_a.entities()) * len(source_b.entities())



def _tokens_of(entity: Entity, properties: Iterable[str]) -> set[str]:
    """Token set of one entity (the seed per-entity path, kept for
    reference/tests; the blockers tokenise in bulk — see
    :func:`_text_tokens`)."""
    tokens: set[str] = set()
    for name in properties:
        for value in entity.values(name):
            tokens.update(t.lower() for t in _TOKEN_RE.findall(value))
    return tokens


#: ASCII fast path for tokenisation: every ASCII codepoint that is not
#: alphanumeric maps to a space (including ``_``, which ``[^\W_]+``
#: excludes from tokens); ``str.translate`` + ``str.split`` then
#: tokenise an entire entity's text in C. Uppercase needs no mapping —
#: the text is lowercased first.
_ASCII_TOKEN_TABLE = {
    i: " " for i in range(128) if not chr(i).isalnum()
}


def _text_tokens(text: str) -> list[str]:
    """Lowercased word tokens of a text, in text order (duplicates
    kept; callers dedup with ``dict.fromkeys`` where order matters).

    ASCII text — the overwhelming share of real sources — tokenises
    entirely in C (lower + translate + split), where lowering first is
    provably boundary-preserving. Anything else tokenises *before*
    lowering, exactly like :func:`_tokens_of`: lowering can decompose
    characters into combining marks ('İ' → 'i' + U+0307) that would
    otherwise split a token mid-word.
    """
    if text.isascii():
        return text.lower().translate(_ASCII_TOKEN_TABLE).split()
    return [token.lower() for token in _TOKEN_RE.findall(text)]


def _entity_text(entity: Entity, properties: Sequence[str]) -> str:
    """All of an entity's values on ``properties``, space-joined.

    One joined string means one tokenisation call per entity instead of
    one per value; the space separator is a token boundary in both
    tokenisation paths, so the token stream equals the concatenation of
    the per-value streams.
    """
    values = entity.properties
    parts: list[str] = []
    for name in properties:
        entity_values = values.get(name)
        if entity_values:
            parts.extend(entity_values)
    return " ".join(parts)


class TokenBlocker(Blocker):
    """Standard token blocking: pairs sharing a token on key properties.

    ``max_block_size`` drops high-frequency tokens (stop words) whose
    blocks would reintroduce quadratic behaviour.
    """

    def __init__(
        self,
        properties_a: Iterable[str],
        properties_b: Iterable[str] | None = None,
        max_block_size: int = 200,
    ):
        self._properties_a = list(properties_a)
        self._properties_b = (
            list(properties_b) if properties_b is not None else self._properties_a
        )
        self._max_block_size = max_block_size

    def signature(self) -> str:
        return (
            f"token-index:v1:props={sorted(self._properties_b)!r}:"
            f"max={self._max_block_size}"
        )

    def build_index(self, source, session=None):
        """Token index of a target source: ``{token: (uids...)}`` in
        source order, with oversized (stop-word) blocks dropped."""
        return self._resolve_index(
            source, session, lambda: self._build_blocks(source, session)
        )

    def _build_blocks(self, source: DataSource, session) -> dict:
        properties = self._properties_b

        def extract(chunk):
            return [
                (entity.uid, _text_tokens(_entity_text(entity, properties)))
                for entity in chunk
            ]

        per_entity = fan_entity_chunks(session, source.entities(), extract)
        # Single pass straight into the blocks; per-entity token dedup
        # is deferred to one C-level dict.fromkeys per block below,
        # which must run before the stop-word size filter (an entity
        # repeating a token must not push its block over the limit).
        blocks: dict[str, list[str]] = {}
        get = blocks.get
        for uid, tokens in per_entity:
            for token in tokens:
                block = get(token)
                if block is None:
                    blocks[token] = [uid]
                else:
                    block.append(uid)
        limit = self._max_block_size
        out: dict[str, tuple[str, ...]] = {}
        for token, uids in blocks.items():
            deduped = dict.fromkeys(uids)
            if len(deduped) <= limit:
                out[token] = tuple(deduped)
        return out

    def candidates(self, source_a, source_b):
        return self._iter_pairs(source_a, source_b, None)

    def _iter_pairs(self, source_a, source_b, session):
        index = self.build_index(source_b, session=session)
        properties_a = self._properties_a
        dedup = source_a is source_b
        for entity_a in source_a:
            uid_a = entity_a.uid
            # Seen partners reset per probe entity: an entity occurs
            # once in A, so duplicates only arise within its own tokens.
            seen: set[str] = set()
            tokens = dict.fromkeys(
                _text_tokens(_entity_text(entity_a, properties_a))
            )
            for token in tokens:
                block = index.get(token)
                if block is None:
                    continue
                for uid_b in block:
                    if dedup:
                        if uid_a >= uid_b:
                            continue
                    elif uid_a == uid_b:
                        continue
                    if uid_b in seen:
                        continue
                    seen.add(uid_b)
                    yield entity_a, source_b.get(uid_b)


class SortedNeighbourhoodBlocker(Blocker):
    """Sorted neighbourhood: sort by a key property, slide a window.

    The per-source index is the key-sorted ``(key, uid)`` list; two
    sources merge stably (ties keep A-then-B order, matching a stable
    sort of the concatenated list), so candidates are identical to the
    seed implementation while each side's sort is reusable and
    persistable on its own.
    """

    def __init__(self, key_property: str, window: int = 10):
        if window < 2:
            raise ValueError("window must be >= 2")
        self._key_property = key_property
        self._window = window

    def signature(self) -> str:
        # The window is a probe-time parameter: every window shares the
        # same sorted index.
        return f"snb-index:v1:key={self._key_property!r}"

    def _key(self, entity: Entity) -> str:
        values = entity.values(self._key_property)
        return values[0].lower() if values else ""

    def build_index(self, source, session=None):
        """Key-sorted ``((key, uid), ...)`` of one source (stable: tie
        order is source insertion order)."""

        def build():
            key_property = self._key_property

            def extract(chunk):
                out = []
                for entity in chunk:
                    values = entity.values(key_property)
                    out.append(
                        (values[0].lower() if values else "", entity.uid)
                    )
                return out

            keyed = fan_entity_chunks(session, source.entities(), extract)
            keyed.sort(key=lambda item: item[0])
            return tuple(keyed)

        return self._resolve_index(source, session, build)

    def candidates(self, source_a, source_b):
        return self._iter_pairs(source_a, source_b, None)

    def _iter_pairs(self, source_a, source_b, session):
        dedup = source_a is source_b
        if dedup:
            tagged = [
                (source_a.get(uid), "a")
                for __, uid in self.build_index(source_a, session=session)
            ]
        else:
            index_a = self.build_index(source_a, session=session)
            index_b = self.build_index(source_b, session=session)
            tagged = []
            i = j = 0
            while i < len(index_a) and j < len(index_b):
                # <= : ties take the A entity first, reproducing a
                # stable sort over the concatenated [A..., B...] list.
                if index_a[i][0] <= index_b[j][0]:
                    tagged.append((source_a.get(index_a[i][1]), "a"))
                    i += 1
                else:
                    tagged.append((source_b.get(index_b[j][1]), "b"))
                    j += 1
            tagged.extend(
                (source_a.get(uid), "a") for __, uid in islice(index_a, i, None)
            )
            tagged.extend(
                (source_b.get(uid), "b") for __, uid in islice(index_b, j, None)
            )
        seen: set[tuple[str, str]] = set()
        for i, (entity_i, side_i) in enumerate(tagged):
            for j in range(i + 1, min(i + self._window, len(tagged))):
                entity_j, side_j = tagged[j]
                if dedup:
                    a, b = sorted((entity_i, entity_j), key=lambda e: e.uid)
                elif side_i == "a" and side_j == "b":
                    a, b = entity_i, entity_j
                elif side_i == "b" and side_j == "a":
                    a, b = entity_j, entity_i
                else:
                    continue
                key = (a.uid, b.uid)
                if key not in seen:
                    seen.add(key)
                    yield a, b


def _root_property(node: ValueNode) -> str | None:
    """The left-most property a value tree reads, if any."""
    while isinstance(node, TransformationNode):
        node = node.inputs[0]
    if isinstance(node, PropertyNode):
        return node.property_name
    return None


class RuleBlocker(Blocker):
    """Rule-aware blocking: token-block on the properties the rule
    compares (the MultiBlock idea, simplified).

    Every comparison contributes its source/target property pair as a
    blocking key, so any pair the rule could plausibly match shares at
    least one token on at least one compared property.
    """

    def __init__(self, rule: LinkageRule, max_block_size: int = 200):
        properties_a: list[str] = []
        properties_b: list[str] = []
        for comparison in rule.comparisons():
            prop_a = _root_property(comparison.source)
            prop_b = _root_property(comparison.target)
            if prop_a is not None and prop_b is not None:
                properties_a.append(prop_a)
                properties_b.append(prop_b)
        if not properties_a:
            raise ValueError("rule has no property-based comparisons to block on")
        self._delegate = TokenBlocker(
            properties_a, properties_b, max_block_size=max_block_size
        )

    def signature(self) -> str:
        return self._delegate.signature()

    def build_index(self, source, session=None):
        return self._delegate.build_index(source, session=session)

    def candidates(self, source_a, source_b):
        return self._delegate.candidates(source_a, source_b)

    def _iter_pairs(self, source_a, source_b, session):
        return self._delegate._iter_pairs(source_a, source_b, session)
