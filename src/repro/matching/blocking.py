"""Candidate generation (blocking) strategies.

Evaluating a linkage rule over the full Cartesian product A x B is
quadratic; blocking prunes the candidate set before rule evaluation.
Three classic strategies are provided plus a rule-aware blocker that
derives its keys from the properties a rule actually compares — a
light-weight stand-in for Silk's MultiBlock [19] (the full
aggregation-aware variant lives in :mod:`repro.matching.multiblock`).

Blocking is an **engine-integrated subsystem**, not a bare pair
stream:

* :meth:`Blocker.iter_shards` emits candidate pairs pre-chunked into
  ready-to-score shards, so :class:`repro.matching.engine.
  MatchingEngine` hands them straight to executor workers without a
  re-chunking layer. Shard boundaries depend only on ``batch_size``
  and the pair order never depends on it, so links stay byte-identical
  across batch sizes and worker counts.
* :meth:`Blocker.build_index` builds the blocker's reusable
  target-side index **vectorized**: tokenisation / key extraction runs
  once per *distinct value* (not once per entity occurrence), bulk
  dict operations assemble the blocks, and construction fans across
  the engine session's shared-memory executor for large sources.
* :meth:`Blocker.probe_batch` probes the index for a whole A-side
  chunk at once — the probe side mirrors the build side:
  :class:`TokenBlocker` bulk-tokenises the chunk through the same
  C-level lower/translate/split path used for indexing and unions each
  entity's postings lists in a single pass with C-level dedup
  (``dict.fromkeys`` over chained block tuples);
  :class:`SortedNeighbourhoodBlocker` resolves all windows of a chunk
  with vectorized ``numpy.searchsorted`` over its sorted merged
  positions; :class:`~repro.matching.multiblock.MultiBlocker` memoises
  probe results per distinct transformed value tuple. Probe chunks fan
  across the session's shared-memory executor via
  :func:`fan_entity_chunks`, and probe traffic is reported through the
  session (``EngineStats.probe_batches`` / ``probe_memo_hits``,
  surfaced per run in ``MatchStats``).
* With an :class:`~repro.engine.session.EngineSession`, indexes are
  memoised in the session and — when the session has a persistent
  :class:`~repro.engine.store.ColumnStore` — persisted in the store's
  **index tier**, keyed by ``DataSource.fingerprint()`` ×
  :meth:`Blocker.signature`. Warm reruns over unchanged sources then
  skip index construction entirely, the same way they already skip
  distance-column builds.

Indexes reference entities by uid only; the live source resolves uids
back to entities at emission time, which is what makes the persisted
form safe (content fingerprints guarantee the uids still describe the
same entities).
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from itertools import chain, islice, repeat
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.nodes import PropertyNode, TransformationNode, ValueNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.session import EngineSession

CandidatePair = tuple[Entity, Entity]

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)

#: Sources below this size are indexed inline even when the session
#: executor could fan out — the thread hop costs more than the work.
_FAN_THRESHOLD = 512

#: A-side entities probed per :meth:`Blocker.probe_batch` call inside
#: the pair stream. Bounds resident per-entity candidate lists (the
#: stream stays memory-bounded like the per-entity loop it replaced)
#: while amortising batch machinery and giving `fan_entity_chunks`
#: enough work to fan. Never affects results — only how many entities
#: are probed per batch.
_PROBE_CHUNK = 2048

#: Entries kept in a run's probe memo before it is dropped wholesale.
#: The memo caches one partner-code array per distinct probe input, so
#: its footprint is bounded by O(limit x average candidate count);
#: clearing resets hit statistics, never results.
_PROBE_MEMO_LIMIT = 65536

#: Shared empty partner result (probing never mutates code arrays).
_EMPTY_CODES = np.empty(0, dtype=np.int32)


def _union_codes(blocks: list, size: int) -> np.ndarray:
    """Union of sorted unique code blocks, sorted: one concatenate +
    one boolean-mask assignment + one ``flatnonzero`` — three C calls,
    with zero-copy fast paths for zero and one block."""
    if not blocks:
        return _EMPTY_CODES
    if len(blocks) == 1:
        return blocks[0]
    mask = np.zeros(size, dtype=bool)
    mask[np.concatenate(blocks)] = True
    return np.flatnonzero(mask)


def _memo_put(memo: dict, key, value) -> None:
    """Insert into a probe memo, dropping it wholesale at the size
    bound (resets hit statistics, never results)."""
    if len(memo) >= _PROBE_MEMO_LIMIT:
        memo.clear()
    memo[key] = value


def fan_entity_chunks(
    session: "EngineSession | None",
    entities: Sequence[Entity],
    fn: Callable[[Sequence[Entity]], list],
) -> list:
    """Map ``fn`` over contiguous entity chunks, fanned across the
    session's shared-memory executor when one is available.

    ``fn`` receives a chunk and returns a list of per-entity results;
    chunk results are concatenated in chunk order, so the output is
    identical to ``fn(entities)`` whatever the worker count. Falls back
    to one inline call for serial/process executors and small inputs.
    """
    executor = session.executor if session is not None else None
    if (
        executor is None
        or not executor.shares_memory
        or executor.workers < 2
        or len(entities) < _FAN_THRESHOLD
    ):
        return fn(entities)
    workers = executor.workers
    size = (len(entities) + workers - 1) // workers
    chunks = [entities[i : i + size] for i in range(0, len(entities), size)]
    merged: list = []
    for part in executor.map(fn, chunks):
        merged.extend(part)
    return merged


def _code_pair_lists(
    chunk: Sequence[Entity],
    code_lists: Sequence[np.ndarray],
    uids: Sequence[str],
    by_code: Sequence[Entity],
    dedup: bool,
) -> Iterator[list[CandidatePair]]:
    """Per-entity candidate-pair lists from partner-code arrays.

    Codes are sorted in uid order, so the dedup-mode constraint
    (``uid_a < uid_b``) is a suffix — one bisect over the uid table
    plus one searchsorted over the codes — and self-pairs delete in
    one probe. Each entity's pair list is built entirely in C (``zip``
    + ``map`` over the code->entity table), and callers flatten with
    ``chain.from_iterable``, so the pair stream costs no per-pair
    Python bytecode at all. Code arrays are never mutated.
    """
    for entity_a, codes in zip(chunk, code_lists):
        uid_a = entity_a.uid
        if dedup:
            floor = bisect_right(uids, uid_a)
            codes = codes[np.searchsorted(codes, floor) :]
        else:
            i = bisect_left(uids, uid_a)
            if i < len(uids) and uids[i] == uid_a:
                j = int(np.searchsorted(codes, i))
                if j < len(codes) and codes[j] == i:
                    codes = np.delete(codes, j)
        yield list(
            zip(repeat(entity_a), map(by_code.__getitem__, codes.tolist()))
        )


def _affected_code_pair_lists(
    chunk: Sequence[Entity],
    code_lists: Sequence[np.ndarray],
    uids: Sequence[str],
    by_code: Sequence[Entity],
    dedup: bool,
    affected: frozenset,
) -> Iterator[list[CandidatePair]]:
    """Per-entity candidate pairs for an *affected-only* rescore.

    The probe chunk holds only affected entities. Two-source mode emits
    every partner (each pair has a unique probe side, so each affected
    pair appears exactly once). Dedup mode emits the forward
    (``uid_a < uid_b``) partners unconditionally plus the backward
    partners that are *not* themselves affected — an affected backward
    partner emits the pair when it is probed itself. Pairs are
    uid-ordered exactly like the cold stream, so rescored pairs key the
    same columns a cold run would.
    """
    for entity_a, codes in zip(chunk, code_lists):
        uid_a = entity_a.uid
        if dedup:
            floor = bisect_right(uids, uid_a)
            split = int(np.searchsorted(codes, floor))
            pairs: list[CandidatePair] = []
            for code in codes[:split].tolist():
                partner = by_code[code]
                # Self-pairs drop here too: the probe entity is always
                # in ``affected``.
                if partner.uid not in affected:
                    pairs.append((partner, entity_a))
            pairs.extend(
                zip(
                    repeat(entity_a),
                    map(by_code.__getitem__, codes[split:].tolist()),
                )
            )
            yield pairs
        else:
            i = bisect_left(uids, uid_a)
            if i < len(uids) and uids[i] == uid_a:
                j = int(np.searchsorted(codes, i))
                if j < len(codes) and codes[j] == i:
                    codes = np.delete(codes, j)
            yield list(
                zip(repeat(entity_a), map(by_code.__getitem__, codes.tolist()))
            )


def _token_blocks(
    source: DataSource, properties: Sequence[str], session
) -> dict:
    """Unfiltered token block table of one source: ``{token: (uids...)}``
    in source order, per-block uid-deduped, no size filter — the
    persisted form. Size filtering is a view concern
    (:meth:`TokenBlocker.build_index`), so one persisted table serves
    every ``max_block_size`` and stays patchable (a patch can never
    resurrect uids a filter already dropped)."""

    def extract(chunk):
        return [
            (entity.uid, _text_tokens(_entity_text(entity, properties)))
            for entity in chunk
        ]

    per_entity = fan_entity_chunks(session, source.entities(), extract)
    blocks: dict[str, list[str]] = {}
    get = blocks.get
    for uid, tokens in per_entity:
        for token in tokens:
            block = get(token)
            if block is None:
                blocks[token] = [uid]
            else:
                block.append(uid)
    return {token: tuple(dict.fromkeys(uids)) for token, uids in blocks.items()}


def _entity_tokens(entity: Entity, properties: Sequence[str]) -> list[str]:
    """Deduped token list of one entity over ``properties``."""
    return list(dict.fromkeys(_text_tokens(_entity_text(entity, properties))))


def _raw_token_patcher(source: DataSource, properties: Sequence[str]):
    """A :meth:`EngineSession.blocking_index` patcher moving an
    unfiltered token block table one source delta forward: displaced
    entity versions leave their old tokens' blocks, upserted versions
    join their new tokens' blocks. Blocks an upsert joins are re-sorted
    by the entity's *current* source position — deletions and
    replacements preserve surviving uids' relative order, so only
    joined blocks can drift, and restoring source order there makes
    the patched table equal a cold rebuild block-for-block (dict
    upsert semantics keep a replaced uid's slot; fresh uids append)."""

    def patch(blocks: dict, delta) -> dict:
        blocks = dict(blocks)
        for old in delta.old_entities():
            uid = old.uid
            for token in _entity_tokens(old, properties):
                block = blocks.get(token)
                if block is None or uid not in block:
                    continue
                pruned = tuple(u for u in block if u != uid)
                if pruned:
                    blocks[token] = pruned
                else:
                    del blocks[token]
        order: dict[str, int] | None = None
        fallback = 0
        for entity in delta.upserts:
            uid = entity.uid
            for token in _entity_tokens(entity, properties):
                block = blocks.get(token)
                if block is None:
                    blocks[token] = (uid,)
                elif uid not in block:
                    if order is None:
                        order = {u: i for i, u in enumerate(source.uids())}
                        # Mid-chain uids a later delta removes are not
                        # in the live source; park them at the end (a
                        # later patch step deletes them anyway).
                        fallback = len(order)
                    blocks[token] = tuple(
                        sorted(
                            block + (uid,),
                            key=lambda u: order.get(u, fallback),
                        )
                    )
        return blocks

    return patch


def _patch_memo_payload(memo, fingerprint: str, token: str, lineage, patcher):
    """Patch a blocker's one-entry instance memo forward to the current
    epoch, mirroring the session's lineage walk for session-less use.
    Returns the patched payload or None (wrong token, no patcher, memo
    epoch not an ancestor, or the patcher gave up)."""
    if memo is None or patcher is None or memo[1] != token:
        return None
    chain_deltas = tuple(lineage)
    if not chain_deltas or chain_deltas[-1].fingerprint != fingerprint:
        return None
    pending = []
    for delta in reversed(chain_deltas):
        pending.append(delta)
        if delta.parent_fingerprint == memo[0]:
            payload = memo[2]
            for step in reversed(pending):
                payload = patcher(payload, step)
                if payload is None:
                    return None
            return payload
    return None


class _ProbeLedger:
    """Per-entity probe results over the store's ``probes-v1`` tier.

    One ledger blob maps entity content fingerprints to their probed
    partner-code arrays for a fixed (target-epoch, probe-signature)
    key. Probing is deterministic, so a ledger entry equals what
    :meth:`Blocker.probe_batch` would recompute — warm runs serve
    unchanged entities from the ledger and probe only the rest.
    Hit/miss traffic is per entity (``StoreStats.probe_hits`` /
    ``probe_misses``); new entries persist on :meth:`flush` (called in
    the pair stream's ``finally``, so partial consumption still saves
    what was probed).
    """

    __slots__ = ("_store", "_session", "_key", "_entries", "_fresh")

    def __init__(self, session, key: str):
        store = session.store if session is not None else None
        self._store = store
        self._session = session
        self._key = key
        self._entries: dict = (
            (store.load_probe_ledger(key) if store is not None else None) or {}
        )
        self._fresh: dict = {}

    @property
    def enabled(self) -> bool:
        return self._store is not None

    def probe(self, chunk: Sequence[Entity], probe_missing):
        """Chunk results, serving known entities and probing the rest
        through ``probe_missing(entities) -> list[codes]``."""
        if self._store is None:
            return probe_missing(chunk)
        entries = self._entries
        fingerprints = [entity.fingerprint() for entity in chunk]
        cached = [entries.get(fp) for fp in fingerprints]
        missing = [
            entity for entity, codes in zip(chunk, cached) if codes is None
        ]
        if missing:
            fresh_iter = iter(probe_missing(missing))
            results = []
            for fp, codes in zip(fingerprints, cached):
                if codes is None:
                    codes = next(fresh_iter)
                    self._fresh[fp] = codes
                results.append(codes)
        else:
            # Fully served: no probe_batch call happened, but the chunk
            # *was* probed — keep the batch counter's meaning stable.
            if self._session is not None:
                self._session.record_probe(batches=1)
            results = cached
        self._store.record_probe_lookups(
            hits=len(chunk) - len(missing), misses=len(missing)
        )
        return results

    def flush(self) -> None:
        if self._store is None or not self._fresh:
            return
        merged = dict(self._entries)
        merged.update(self._fresh)
        if self._store.save_probe_ledger(self._key, merged):
            self._store.record_probe_lookups(writes=len(self._fresh))
        self._entries = merged
        self._fresh = {}


def _chunked(
    pairs: Iterable[CandidatePair], batch_size: int
) -> Iterator[list[CandidatePair]]:
    """Group a pair stream into shards of at most ``batch_size``
    (C-level: one ``islice`` materialisation per shard, no per-pair
    Python bytecode)."""
    iterator = iter(pairs)
    while True:
        shard = list(islice(iterator, batch_size))
        if not shard:
            return
        yield shard


class Blocker(ABC):
    """Produces candidate entity pairs from two data sources."""

    #: Instance memo of the last built index: (source fingerprint,
    #: signature, payload). Lets session-less callers reuse the index
    #: across repeated runs over an unchanged source.
    _index_memo: tuple[str, str, object] | None = None
    #: Same, for the derived probe-side view (separate slot so
    #: alternating build/probe resolution never thrashes either memo).
    _probe_index_memo: tuple[str, str, object] | None = None
    #: Derived public view (e.g. the size-filtered token table) — its
    #: own slot for the same no-thrash reason.
    _view_index_memo: tuple[str, str, object] | None = None
    #: Reverse (probe-side) index used by affected-set computation.
    _reverse_index_memo: tuple[str, str, object] | None = None

    @abstractmethod
    def candidates(
        self, source_a: DataSource, source_b: DataSource
    ) -> Iterator[CandidatePair]:
        """Yield candidate pairs (each pair at most once)."""

    def candidate_count(self, source_a: DataSource, source_b: DataSource) -> int:
        return sum(1 for _ in self.candidates(source_a, source_b))

    def signature(self) -> str | None:
        """Stable identity of the index this blocker builds over a
        target source, or None when it builds no (persistable) index.

        The persistent index tier keys on
        ``DataSource.fingerprint() x signature()``, so the signature
        must change whenever construction parameters that affect the
        index content change, and must be stable across processes
        (no ``id()``, no hash randomisation).
        """
        return None

    def build_index(
        self, source: DataSource, session: "EngineSession | None" = None
    ) -> object | None:
        """Build (or load) this blocker's reusable index over a target
        source; None for blockers that don't index.

        With a ``session`` the index resolves through the session's
        index memo and — when the session has a persistent store — the
        store's index tier. Without one, the blocker keeps a
        one-entry instance memo keyed by the source's content
        fingerprint, so repeated runs over an unchanged source still
        reuse the index.
        """
        return None

    def iter_shards(
        self,
        source_a: DataSource,
        source_b: DataSource,
        batch_size: int,
        session: "EngineSession | None" = None,
    ) -> Iterator[list[CandidatePair]]:
        """Candidate pairs pre-chunked into ready-to-score shards.

        The pair order is exactly :meth:`candidates` order and does not
        depend on ``batch_size`` (only the chunk boundaries do), which
        is what keeps generated links byte-identical across batch
        sizes and worker counts. ``session`` lets index construction
        share the engine's caches; the default implementation chunks
        the plain pair stream.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return _chunked(self._iter_pairs(source_a, source_b, session), batch_size)

    def _iter_pairs(
        self,
        source_a: DataSource,
        source_b: DataSource,
        session: "EngineSession | None",
    ) -> Iterator[CandidatePair]:
        """Session-aware pair stream; the default ignores the session."""
        return self.candidates(source_a, source_b)

    def probe_index(
        self,
        source_a: DataSource,
        source_b: DataSource,
        session: "EngineSession | None" = None,
    ) -> object:
        """The probe-side state of this blocker over a source pairing
        (the argument :meth:`probe_batch` expects as ``index``).

        Builds on :meth:`build_index` — token blocking derives an
        integer *code view* of its block table (one code per distinct
        B uid, in sorted uid order, each block a sorted ``int32`` code
        array) so batch probing unions postings with numpy instead of
        per-uid Python; sorted neighbourhood precomputes the merged
        key positions of both sides. Token and MultiBlock resolve
        their derived views through the same session index memo /
        persistent index tier as the block tables themselves; sorted
        neighbourhood re-derives its positions per run (they hold live
        entity references and cost only two searchsorted calls over
        the already-memoised sorted indexes).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batch probe path"
        )

    def probe_batch(
        self,
        entities: Sequence[Entity],
        index: object,
        session: "EngineSession | None" = None,
    ) -> list[Sequence]:
        """Candidate B-side partners for a whole chunk of probe
        entities, against this blocker's :meth:`probe_index`.

        Returns one partner sequence per probe entity, in input order:
        already partner-deduped, in the blocker's deterministic
        emission order, **unfiltered** — self-pairs and dedup-mode
        ordering are the caller's concern (:meth:`_iter_pairs` applies
        them), so parity suites can compare raw probe results
        directly. Partners are *references into the probe index* (code
        arrays for token/MultiBlock probing, uid slices for sorted
        neighbourhood); :meth:`probe_uids` materialises the uid view.

        With a ``session``, chunks fan across its shared-memory
        executor (:func:`fan_entity_chunks`) and probe traffic is
        recorded in the session's probe counters. Results never depend
        on the session, the worker count, or how entities are chunked
        across calls.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batch probe path"
        )

    def probe_uids(self, index: object, partners: Sequence) -> tuple[str, ...]:
        """The uid view of one entity's :meth:`probe_batch` result."""
        raise NotImplementedError(
            f"{type(self).__name__} has no batch probe path"
        )

    def affected_probe_uids(
        self,
        source_a: DataSource,
        source_b: DataSource,
        deltas_a: Sequence,
        deltas_b: Sequence,
        session: "EngineSession | None" = None,
    ) -> frozenset | None:
        """Probe-side uids whose candidate sets may have changed after
        the given :class:`~repro.data.source.SourceDelta` chains, or
        None when this blocker cannot bound the impact (the engine then
        falls back to a full rescore — always correct, never fast).

        The contract is *soundness*, not minimality: any pair whose
        candidate membership or participants changed must touch the
        returned set once the engine unions in the changed/deleted uids
        themselves. Over-approximation only costs rescoring work.
        """
        return None

    def iter_affected_shards(
        self,
        source_a: DataSource,
        source_b: DataSource,
        affected: frozenset,
        batch_size: int,
        session: "EngineSession | None" = None,
    ) -> Iterator[list[CandidatePair]]:
        """Ready-to-score shards of exactly the candidate pairs that
        touch ``affected`` (each such pair once, uid-ordered like the
        cold stream). The default filters the full pair stream — always
        correct; indexed blockers override it to probe only the
        affected entities.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")

        def touched(pairs: Iterable[CandidatePair]) -> Iterator[CandidatePair]:
            for entity_a, entity_b in pairs:
                if entity_a.uid in affected or entity_b.uid in affected:
                    yield entity_a, entity_b

        return _chunked(
            touched(self._iter_pairs(source_a, source_b, session)), batch_size
        )

    def _resolve_index(
        self,
        source: DataSource,
        session: "EngineSession | None",
        build: Callable[[], object],
        patcher=None,
    ) -> object:
        """Index lookup through the session memo / persistent tier /
        the blocker's own one-entry memo, building on miss. With a
        ``patcher``, an ancestor epoch's payload (session, store or
        instance memo) is patched forward through the source's delta
        chain instead of rebuilding."""
        token = self.signature()
        if token is None:
            return build()
        if session is not None:
            return session.blocking_index(
                source.fingerprint(),
                token,
                build,
                lineage=source.delta_chain(),
                patcher=patcher,
            )
        fingerprint = source.fingerprint()
        memo = self._index_memo
        if memo is not None and memo[0] == fingerprint and memo[1] == token:
            return memo[2]
        payload = _patch_memo_payload(
            memo, fingerprint, token, source.delta_chain(), patcher
        )
        if payload is None:
            payload = build()
        self._index_memo = (fingerprint, token, payload)
        return payload

    def _resolve_probe_index(
        self,
        source: DataSource,
        session: "EngineSession | None",
        token: str,
        build: Callable[[], object],
        patcher=None,
        slot: str = "_probe_index_memo",
    ) -> object:
        """Probe-view lookup, mirroring :meth:`_resolve_index` with an
        explicit token and its own instance-memo slot (``slot``):
        session memo / persistent index tier when a session is
        available, a one-entry fingerprint-keyed memo otherwise."""
        if session is not None:
            return session.blocking_index(
                source.fingerprint(),
                token,
                build,
                lineage=source.delta_chain(),
                patcher=patcher,
            )
        fingerprint = source.fingerprint()
        memo = getattr(self, slot)
        if memo is not None and memo[0] == fingerprint and memo[1] == token:
            return memo[2]
        payload = _patch_memo_payload(
            memo, fingerprint, token, source.delta_chain(), patcher
        )
        if payload is None:
            payload = build()
        setattr(self, slot, (fingerprint, token, payload))
        return payload


class FullIndexBlocker(Blocker):
    """The full Cartesian product — exact but quadratic.

    For deduplication (both sources identical) only unordered pairs
    ``(i, j)`` with ``i < j`` are produced. Both the pair stream and
    the shard stream are fully lazy: nothing quadratic is materialised
    ahead of consumption, so a streaming consumer stays memory-bounded
    even on sources whose cross product would not fit in memory.
    """

    def candidates(self, source_a, source_b):
        if source_a is source_b:
            entities = source_a.entities()
            for i, entity_a in enumerate(entities):
                # islice, not a slice: entities[i+1:] would copy O(n^2)
                # references across the whole iteration.
                for entity_b in islice(entities, i + 1, None):
                    yield entity_a, entity_b
            return
        entities_b = source_b.entities()
        for entity_a in source_a:
            for entity_b in entities_b:
                yield entity_a, entity_b

    def candidate_count(self, source_a: DataSource, source_b: DataSource) -> int:
        # Closed form — benchmarks and blocking-quality reports call
        # this on full Cartesian products, where iterating is quadratic.
        if source_a is source_b:
            n = len(source_a.entities())
            return n * (n - 1) // 2
        return len(source_a.entities()) * len(source_b.entities())



def _tokens_of(entity: Entity, properties: Iterable[str]) -> set[str]:
    """Token set of one entity (the seed per-entity path, kept for
    reference/tests; the blockers tokenise in bulk — see
    :func:`_text_tokens`)."""
    tokens: set[str] = set()
    for name in properties:
        for value in entity.values(name):
            tokens.update(t.lower() for t in _TOKEN_RE.findall(value))
    return tokens


#: ASCII fast path for tokenisation: every ASCII codepoint that is not
#: alphanumeric maps to a space (including ``_``, which ``[^\W_]+``
#: excludes from tokens); ``str.translate`` + ``str.split`` then
#: tokenise an entire entity's text in C. Uppercase needs no mapping —
#: the text is lowercased first.
_ASCII_TOKEN_TABLE = {
    i: " " for i in range(128) if not chr(i).isalnum()
}


def _text_tokens(text: str) -> list[str]:
    """Lowercased word tokens of a text, in text order (duplicates
    kept; callers dedup with ``dict.fromkeys`` where order matters).

    ASCII text — the overwhelming share of real sources — tokenises
    entirely in C (lower + translate + split), where lowering first is
    provably boundary-preserving. Anything else tokenises *before*
    lowering, exactly like :func:`_tokens_of`: lowering can decompose
    characters into combining marks ('İ' → 'i' + U+0307) that would
    otherwise split a token mid-word.
    """
    if text.isascii():
        return text.lower().translate(_ASCII_TOKEN_TABLE).split()
    return [token.lower() for token in _TOKEN_RE.findall(text)]


def _entity_text(entity: Entity, properties: Sequence[str]) -> str:
    """All of an entity's values on ``properties``, space-joined.

    One joined string means one tokenisation call per entity instead of
    one per value; the space separator is a token boundary in both
    tokenisation paths, so the token stream equals the concatenation of
    the per-value streams.
    """
    values = entity.properties
    parts: list[str] = []
    for name in properties:
        entity_values = values.get(name)
        if entity_values:
            parts.extend(entity_values)
    return " ".join(parts)


@dataclass(frozen=True)
class _TokenProbeIndex:
    """Integer code view of one token block table.

    Codes number the distinct B uids appearing in any block, in sorted
    uid order — so sorted code arrays are sorted uid sequences, and the
    dedup-mode ordering constraint becomes a suffix slice. Blocks are
    sorted unique ``int32`` arrays; the whole view pickles, so it
    persists in the store's index tier alongside the raw block table.
    """

    #: code -> uid, ascending.
    uids: tuple[str, ...]
    #: token -> sorted unique codes of the B entities filed under it.
    blocks: dict
    #: Code-space size (mask length for the postings union).
    size: int


def _token_code_payload(blocks: dict) -> tuple[tuple[str, ...], dict]:
    """Derive the probe-side code view from a raw token block table.

    Returned as a plain ``(uids, code blocks)`` tuple — the form the
    persistent index tier pickles stays free of private classes, so
    old blobs survive refactors (an unreadable blob is just a miss).
    """
    uids = sorted(set(chain.from_iterable(blocks.values())))
    code_of = {uid: code for code, uid in enumerate(uids)}
    code_blocks = {
        token: np.unique(
            np.fromiter(
                (code_of[uid] for uid in block),
                dtype=np.int32,
                count=len(block),
            )
        )
        for token, block in blocks.items()
    }
    return tuple(uids), code_blocks


class TokenBlocker(Blocker):
    """Standard token blocking: pairs sharing a token on key properties.

    ``max_block_size`` drops high-frequency tokens (stop words) whose
    blocks would reintroduce quadratic behaviour. Probing is batch
    (:meth:`probe_batch`, over the :meth:`probe_index` code view):
    candidates are emitted grouped per A entity in source order, each
    entity's partners in sorted uid order — the same deterministic
    stream for every chunking, worker count and batch size.
    """

    def __init__(
        self,
        properties_a: Iterable[str],
        properties_b: Iterable[str] | None = None,
        max_block_size: int = 200,
    ):
        self._properties_a = list(properties_a)
        self._properties_b = (
            list(properties_b) if properties_b is not None else self._properties_a
        )
        self._max_block_size = max_block_size

    def signature(self) -> str:
        # v2: the persisted payload is the *unfiltered* block table
        # (see :func:`_token_blocks`); v1 blobs miss cleanly.
        return (
            f"token-index:v2:props={sorted(self._properties_b)!r}:"
            f"max={self._max_block_size}"
        )

    def build_index(self, source, session=None):
        """Token index of a target source: ``{token: (uids...)}`` in
        source order, with oversized (stop-word) blocks dropped.

        The underlying persisted/patched payload is the *unfiltered*
        table (:meth:`_raw_blocks`) — a delta patch can shrink a block
        back under the limit, which a filtered payload could not
        express. The public filtered view resolves through its own memo
        key; on a delta its "patch" is simply a refilter of the
        already-patched raw table, so it never counts as a rebuild."""

        def filtered():
            raw = self._raw_blocks(source, session)
            limit = self._max_block_size
            return {
                token: uids for token, uids in raw.items() if len(uids) <= limit
            }

        return self._resolve_probe_index(
            source,
            session,
            f"{self.signature()}|filtered-blocks-v1",
            filtered,
            patcher=lambda payload, delta: filtered(),
            slot="_view_index_memo",
        )

    def _raw_blocks(self, source: DataSource, session) -> dict:
        return self._resolve_index(
            source,
            session,
            lambda: _token_blocks(source, self._properties_b, session),
            patcher=_raw_token_patcher(source, self._properties_b),
        )

    def candidates(self, source_a, source_b):
        return self._iter_pairs(source_a, source_b, None)

    def probe_index(self, source_a, source_b, session=None):
        """Code view of the target block table: distinct B uids number
        into sorted-uid order, each block becomes a sorted ``int32``
        code array. Resolves through the same memo / persistent index
        tier as the block table itself (key suffix ``probe-codes-v1``),
        so warm sessions and warm stores skip the derivation. On a
        delta, the view patches in place: unaffected blocks renumber
        through one vectorized mapping (only when the code space
        changed), affected blocks recompute from the patched table."""
        # The raw block table is only materialised inside the builder:
        # a probe-view hit (warm session or warm store) never loads it.
        uids, blocks = self._resolve_probe_index(
            source_b,
            session,
            f"{self.signature()}|probe-codes-v1",
            lambda: _token_code_payload(
                self.build_index(source_b, session=session)
            ),
            patcher=lambda payload, delta: self._patch_probe_view(
                payload, delta, self.build_index(source_b, session=session)
            ),
        )
        return _TokenProbeIndex(uids=uids, blocks=blocks, size=len(uids))

    def _patch_probe_view(self, payload, delta, filtered_blocks):
        """Move a ``(uids, code blocks)`` probe view one delta forward.

        Dead uids leave the code table (probing resolves codes back to
        live entities, so they must go); genuinely new uids merge in
        sorted position and surviving codes renumber through one
        monotone ``mapping[codes]`` gather — sortedness is preserved,
        so no per-block sort. Blocks touching any changed entity's
        tokens (old or new version) recompute from the patched filtered
        table; every other block is content-identical to a cold build.
        ``filtered_blocks`` is the *final*-epoch table: a multi-step
        patch recomputes affected tokens against it at every step,
        which is idempotent-correct (uids not yet in the step's code
        table are dropped and re-added by the later step that
        introduces them).
        """
        uids_t, code_blocks = payload
        properties = self._properties_b
        affected_tokens: set[str] = set()
        for entity in chain(delta.upserts, delta.old_entities()):
            affected_tokens.update(_entity_tokens(entity, properties))
        table = list(uids_t)
        table_set = set(table)
        upsert_uids = delta.upsert_uids
        dead = (delta.delete_uids - upsert_uids) & table_set
        inserted = upsert_uids - table_set
        if dead or inserted:
            new_table = sorted((table_set - dead) | upsert_uids)
            code_of = {uid: code for code, uid in enumerate(new_table)}
            mapping = np.fromiter(
                (code_of.get(uid, -1) for uid in table),
                dtype=np.int64,
                count=len(table),
            )
            new_blocks = {}
            for token, codes in code_blocks.items():
                if token in affected_tokens:
                    continue
                remapped = mapping[codes]
                remapped = remapped[remapped >= 0]
                if remapped.size:
                    new_blocks[token] = remapped.astype(np.int32)
        else:
            new_table = table
            code_of = {uid: code for code, uid in enumerate(table)}
            new_blocks = {
                token: codes
                for token, codes in code_blocks.items()
                if token not in affected_tokens
            }
        for token in affected_tokens:
            block = filtered_blocks.get(token)
            if not block:
                continue
            codes = sorted(
                {code_of[uid] for uid in block if uid in code_of}
            )
            if codes:
                new_blocks[token] = np.array(codes, dtype=np.int32)
        return tuple(new_table), new_blocks

    def probe_batch(self, entities, index, session=None, memo=None):
        """Batch token probe: bulk tokenisation (the same C-level
        lower/translate/split path the index build uses) plus one
        single-pass postings-union per entity — a boolean mask over the
        code space absorbs every block in C and ``flatnonzero`` reads
        the union back sorted (an entity probing a single block reuses
        the index's own array, zero-copy). Probe results memoise per
        distinct property text (``memo``; ``_iter_pairs`` threads one
        through the whole run), so duplicate-heavy sources skip
        tokenisation *and* the union."""
        properties = self._properties_a
        get = index.blocks.get
        size = index.size
        shared_memo = memo if memo is not None else {}

        def probe(chunk):
            hits = 0
            results = []
            for entity in chunk:
                text = _entity_text(entity, properties)
                codes = shared_memo.get(text)
                if codes is not None:
                    hits += 1
                    results.append(codes)
                    continue
                blocks = []
                for token in dict.fromkeys(_text_tokens(text)):
                    block = get(token)
                    if block is not None:
                        blocks.append(block)
                codes = _union_codes(blocks, size)
                _memo_put(shared_memo, text, codes)
                results.append(codes)
            if session is not None and hits:
                session.record_probe(memo_hits=hits)
            return results

        if session is not None:
            session.record_probe(batches=1)
        return fan_entity_chunks(session, entities, probe)

    def probe_uids(self, index, partners):
        return tuple(map(index.uids.__getitem__, partners.tolist()))

    def affected_probe_uids(
        self, source_a, source_b, deltas_a, deltas_b, session=None
    ):
        """Probe-side entities whose candidate sets may have changed.

        Pairs touching a *changed* entity need no coverage here: the
        engine unions changed uids into the drop set itself, and
        :meth:`iter_affected_shards` re-emits their current pairs —
        through the changed entity's own probe in dedup mode, through
        a targeted reverse probe of changed B entities in two-source
        mode. What remains is pairs between two *unchanged* entities,
        and those can only move when a block crosses
        ``max_block_size``: pairs among otherwise-unchanged members
        appear when a block shrinks under the limit, vanish when it
        grows past it. The affected set is therefore the changed uids
        plus, for every limit-crossing block, its probe-side holders
        (two-source, via the unfiltered reverse table) or its members
        (dedup, where the two coincide). Parent-epoch block sizes
        reconstruct exactly from the chain's membership deltas.
        """
        properties_b = self._properties_b

        def entity_tokens(entity) -> frozenset:
            return frozenset(_text_tokens(_entity_text(entity, properties_b)))

        # Endpoint token sets per changed B uid across the whole chain:
        # first old version wins the baseline, last state wins the
        # final (deletes end absent; a mid-chain insert later deleted
        # nets out to no membership change).
        baseline: dict[str, "frozenset | None"] = {}
        final: dict[str, "frozenset | None"] = {}
        for delta in deltas_b:
            for entity in delta.old_entities():
                baseline.setdefault(entity.uid, entity_tokens(entity))
            for uid in delta.delete_uids:
                final[uid] = None
            for entity in delta.upserts:
                baseline.setdefault(entity.uid, None)
                final[entity.uid] = entity_tokens(entity)
        if not baseline and not final:
            return frozenset()

        if source_a is source_b:
            limit = self._max_block_size
            raw = self._raw_blocks(source_b, session)
            affected: set[str] = set(baseline) | set(final)
            growth: dict[str, int] = {}
            for uid in affected:
                before = baseline.get(uid) or frozenset()
                after = final.get(uid) or frozenset()
                for token in after - before:
                    growth[token] = growth.get(token, 0) + 1
                for token in before - after:
                    growth[token] = growth.get(token, 0) - 1
            for token, delta_size in growth.items():
                members = raw.get(token, ())
                new_size = len(members)
                old_size = new_size - delta_size
                if (old_size > limit) != (new_size > limit):
                    # Members that *left* the block are changed uids,
                    # already in the set.
                    affected.update(members)
            return frozenset(affected)

        limit = self._max_block_size
        raw = self._raw_blocks(source_b, session)
        growth: dict[str, int] = {}
        for uid in set(baseline) | set(final):
            before = baseline.get(uid) or frozenset()
            after = final.get(uid) or frozenset()
            for token in after - before:
                growth[token] = growth.get(token, 0) + 1
            for token in before - after:
                growth[token] = growth.get(token, 0) - 1
        flipped = []
        for token, delta_size in growth.items():
            new_size = len(raw.get(token, ()))
            if (new_size - delta_size > limit) != (new_size > limit):
                flipped.append(token)
        if not flipped:
            return frozenset()
        reverse = self._reverse_blocks(source_a, session)
        affected: set[str] = set()
        for token in flipped:
            block = reverse.get(token)
            if block:
                affected.update(block)
        return frozenset(affected)

    def _reverse_blocks(self, source_a: DataSource, session) -> dict:
        """Unfiltered token table over the *probe* side, keyed by the
        probe properties — the reverse index that answers "which A
        entities could pair with a B entity holding these tokens".
        Unbounded (no stop-word filter): affected sets must
        over-approximate, never drop. Persisted and patched like the
        forward table, under its own ``:rev:`` token."""
        properties = self._properties_a
        token = f"token-index:v2:rev:props={sorted(properties)!r}"
        build = lambda: _token_blocks(source_a, properties, session)
        patcher = _raw_token_patcher(source_a, properties)
        return self._resolve_probe_index(
            source_a,
            session,
            token,
            build,
            patcher=patcher,
            slot="_reverse_index_memo",
        )

    def iter_affected_shards(
        self, source_a, source_b, affected, batch_size, session=None
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return _chunked(
            chain.from_iterable(
                self._iter_affected_pair_lists(
                    source_a, source_b, affected, session
                )
            ),
            batch_size,
        )

    def _iter_affected_pair_lists(self, source_a, source_b, affected, session):
        index = self.probe_index(source_a, source_b, session=session)
        dedup = source_a is source_b
        uids = index.uids
        get_b = source_b.get
        by_code = [get_b(uid) for uid in uids]
        entities = [
            entity for entity in source_a.entities() if entity.uid in affected
        ]
        memo: dict = {}
        ledger = self._probe_ledger(source_a, source_b, session)
        try:
            for start in range(0, len(entities), _PROBE_CHUNK):
                chunk = entities[start : start + _PROBE_CHUNK]
                results = ledger.probe(
                    chunk,
                    lambda miss: self.probe_batch(
                        miss, index, session, memo=memo
                    ),
                )
                yield from _affected_code_pair_lists(
                    chunk, results, uids, by_code, dedup, affected
                )
        finally:
            ledger.flush()
        if not dedup:
            yield from self._targeted_reverse_pair_lists(
                source_a, source_b, affected, session
            )

    def _targeted_reverse_pair_lists(
        self, source_a, source_b, affected, session
    ):
        """Pairs of *unaffected* probe entities with affected stored
        entities. Two-source emission is one-directional (only A
        probes), so a changed B entity's pairs with unchanged A
        partners never surface from the affected probes above; the
        reverse table answers them directly, under the same stop-word
        filter the forward probe applies. Affected probe entities are
        excluded — their own full probe already emits these pairs —
        which keeps every affected pair emitted exactly once."""
        limit = self._max_block_size
        raw = self._raw_blocks(source_b, session)
        reverse = self._reverse_blocks(source_a, session)
        properties_b = self._properties_b
        get_a = source_a.get
        for uid in sorted(affected):
            if uid not in source_b:
                continue
            entity_b = source_b.get(uid)
            partners: set[str] = set()
            for token in set(
                _text_tokens(_entity_text(entity_b, properties_b))
            ):
                if len(raw.get(token, ())) > limit:
                    continue
                partners.update(reverse.get(token, ()))
            partners -= affected
            partners.discard(uid)
            if partners:
                yield [
                    (get_a(partner), entity_b) for partner in sorted(partners)
                ]

    def _probe_ledger(self, source_a, source_b, session) -> _ProbeLedger:
        from repro.engine.store import index_key

        if session is None or session.store is None:
            return _ProbeLedger(None, "")
        token = (
            f"{self.signature()}|probe-results-v1:"
            f"probe_props={sorted(self._properties_a)!r}"
        )
        return _ProbeLedger(
            session, index_key(source_b.fingerprint(), token)
        )

    def _iter_pairs(self, source_a, source_b, session):
        return chain.from_iterable(
            self._iter_pair_lists(source_a, source_b, session)
        )

    def _iter_pair_lists(self, source_a, source_b, session):
        index = self.probe_index(source_a, source_b, session=session)
        dedup = source_a is source_b
        uids = index.uids
        get_b = source_b.get
        # Entities resolve by integer code (one list index per pair)
        # instead of by uid string.
        by_code = [get_b(uid) for uid in uids]
        entities = source_a.entities()
        memo: dict = {}
        ledger = self._probe_ledger(source_a, source_b, session)
        try:
            for start in range(0, len(entities), _PROBE_CHUNK):
                chunk = entities[start : start + _PROBE_CHUNK]
                yield from _code_pair_lists(
                    chunk,
                    ledger.probe(
                        chunk,
                        lambda miss: self.probe_batch(
                            miss, index, session, memo=memo
                        ),
                    ),
                    uids,
                    by_code,
                    dedup,
                )
        finally:
            ledger.flush()


@dataclass(frozen=True)
class _SnbProbeState:
    """Precomputed probe geometry of one sorted-neighbourhood pairing.

    Positions are indices into the stable merged key order (A before B
    on ties). ``partner_positions`` is sorted ascending — that is what
    lets :meth:`SortedNeighbourhoodBlocker.probe_batch` resolve every
    window with one vectorized ``numpy.searchsorted``.
    """

    dedup: bool
    #: Probe entities in merged order (dedup: every entity; two-source:
    #: the A side) — the deterministic emission order of the blocker.
    probe_entities: list[Entity]
    #: Merged position per probe entity, aligned with probe_entities.
    positions: np.ndarray
    #: uid -> merged position, so arbitrary entity chunks can probe.
    position_of: dict[str, int]
    #: Merged positions of the partner side, sorted ascending.
    partner_positions: np.ndarray
    #: Partner uids aligned with partner_positions.
    partner_uids: list[str]


def _snb_merged_positions(
    index_a: Sequence[tuple[str, str]], index_b: Sequence[tuple[str, str]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merged key-order positions of two key-sorted payloads (A before
    B on ties), from the payloads alone — no live entities needed, so
    affected-set computation can reconstruct a *previous* epoch's
    geometry from peeked index payloads."""
    keys_a, keys_b = _key_arrays(
        [key for key, __ in index_a], [key for key, __ in index_b]
    )
    positions_a = np.arange(len(keys_a), dtype=np.int64) + np.searchsorted(
        keys_b, keys_a, side="left"
    )
    positions_b = np.arange(len(keys_b), dtype=np.int64) + np.searchsorted(
        keys_a, keys_b, side="right"
    )
    return positions_a, positions_b


def _near_mask(
    positions: np.ndarray, changed_sorted: np.ndarray, margin: int
) -> np.ndarray:
    """Boolean mask of positions within ``margin`` of any changed
    position (one vectorized searchsorted against the sorted changed
    array, then nearest-neighbour distance on either side)."""
    if changed_sorted.size == 0 or positions.size == 0:
        return np.zeros(positions.size, dtype=bool)
    idx = np.searchsorted(changed_sorted, positions)
    nearest = np.full(positions.size, np.inf)
    right = idx < changed_sorted.size
    nearest[right] = changed_sorted[idx[right]] - positions[right]
    left = idx > 0
    np.minimum(
        nearest,
        np.where(left, positions - changed_sorted[np.maximum(idx - 1, 0)], np.inf),
        out=nearest,
    )
    return nearest <= margin


def _key_arrays(
    keys_a: Sequence[str], keys_b: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-key arrays for vectorized merging.

    Fixed-width ``U`` dtype compares codepoint-lexicographically like
    Python ``str`` — except embedded NULs (numpy pads with NUL and
    strips trailing ones), so those pathological keys demote both
    sides to object arrays (exact Python comparisons, still one
    C-level searchsorted loop).
    """
    if any("\x00" in key for key in keys_a) or any(
        "\x00" in key for key in keys_b
    ):
        dtype: object = object
    else:
        dtype = np.str_
    return np.array(keys_a, dtype=dtype), np.array(keys_b, dtype=dtype)


class SortedNeighbourhoodBlocker(Blocker):
    """Sorted neighbourhood: sort by a key property, slide a window.

    The per-source index is the key-sorted ``(key, uid)`` list; two
    sources merge stably (ties keep A-then-B order, matching a stable
    sort of the concatenated list), so the candidate *set* is identical
    to the seed sliding-window implementation while each side's sort is
    reusable and persistable on its own. Probing is batch
    (:meth:`probe_batch`): windows resolve via vectorized
    ``numpy.searchsorted`` over the merged positions, and candidates
    are emitted grouped per probe entity in merged order — the same
    deterministic stream for every chunking, worker count and batch
    size.
    """

    def __init__(self, key_property: str, window: int = 10):
        if window < 2:
            raise ValueError("window must be >= 2")
        self._key_property = key_property
        self._window = window

    def signature(self) -> str:
        # The window is a probe-time parameter: every window shares the
        # same sorted index.
        return f"snb-index:v1:key={self._key_property!r}"

    def _key(self, entity: Entity) -> str:
        values = entity.values(self._key_property)
        return values[0].lower() if values else ""

    def build_index(self, source, session=None):
        """Key-sorted ``((key, uid), ...)`` of one source (stable: tie
        order is source insertion order)."""

        def build():
            key_property = self._key_property

            def extract(chunk):
                out = []
                for entity in chunk:
                    values = entity.values(key_property)
                    out.append(
                        (values[0].lower() if values else "", entity.uid)
                    )
                return out

            keyed = fan_entity_chunks(session, source.entities(), extract)
            keyed.sort(key=lambda item: item[0])
            return tuple(keyed)

        return self._resolve_index(
            source, session, build, patcher=self._patch_keyed(source)
        )

    def _patch_keyed(self, source: DataSource):
        """Patcher moving a key-sorted ``((key, uid), ...)`` payload one
        delta forward: changed uids' entries drop, upserted versions'
        entries merge, and one near-sorted Timsort by ``(key, current
        source position)`` restores exactly the cold build's order —
        the cold sort is stable over source order, and dict upsert
        semantics preserve each surviving uid's source position."""

        def patch(payload, delta):
            touched = delta.changed_uids
            entries = [
                (key, uid) for key, uid in payload if uid not in touched
            ]
            entries.extend(
                (self._key(entity), entity.uid) for entity in delta.upserts
            )
            order = {uid: i for i, uid in enumerate(source.uids())}
            # Mid-chain entries for uids a *later* delta removes are
            # absent from the live source; park them at the end (any
            # stable position works — that later patch deletes them).
            fallback = len(order)
            entries.sort(key=lambda item: (item[0], order.get(item[1], fallback)))
            return tuple(entries)

        return patch

    def candidates(self, source_a, source_b):
        return self._iter_pairs(source_a, source_b, None)

    def probe_index(
        self, source_a, source_b, session: "EngineSession | None" = None
    ) -> "_SnbProbeState":
        """The probe-side state over a source pairing: merged positions
        of both sides in the stable A-then-B key order, precomputed so
        :meth:`probe_batch` resolves every window with vectorized
        ``numpy.searchsorted`` instead of a Python merge + sliding
        window.

        The merge itself is vectorized: A's merged position is its own
        rank plus the count of strictly-smaller B keys
        (``searchsorted(..., "left")``); B's is its rank plus the count
        of smaller-or-equal A keys (``"right"`` — ties take A first),
        which reproduces the stable concat-sort order exactly.

        The state holds live entity references, so it is re-derived
        per run rather than memoised/persisted — the expensive part
        (each side's key sort) already resolves through
        :meth:`build_index`'s memo and the persistent index tier.
        """
        dedup = source_a is source_b
        index_a = self.build_index(source_a, session=session)
        if dedup:
            uids = [uid for __, uid in index_a]
            n = len(uids)
            return _SnbProbeState(
                dedup=True,
                probe_entities=[source_a.get(uid) for uid in uids],
                positions=np.arange(n, dtype=np.int64),
                position_of={uid: i for i, uid in enumerate(uids)},
                partner_positions=np.arange(n, dtype=np.int64),
                partner_uids=uids,
            )
        index_b = self.build_index(source_b, session=session)
        positions_a, positions_b = _snb_merged_positions(index_a, index_b)
        uids_a = [uid for __, uid in index_a]
        return _SnbProbeState(
            dedup=False,
            probe_entities=[source_a.get(uid) for uid in uids_a],
            positions=positions_a,
            position_of={uid: int(pos) for uid, pos in zip(uids_a, positions_a)},
            partner_positions=positions_b,
            partner_uids=[uid for __, uid in index_b],
        )

    def probe_batch(self, entities, index, session=None):
        """Batch window probe: all windows of a chunk resolve through
        one vectorized ``numpy.searchsorted`` over the sorted partner
        positions (two-source mode probes ``window - 1`` positions to
        either side; dedup mode slices the forward window only, each
        unordered pair once)."""
        state: _SnbProbeState = index
        window = self._window

        def probe(chunk):
            positions = np.fromiter(
                (state.position_of[entity.uid] for entity in chunk),
                dtype=np.int64,
                count=len(chunk),
            )
            partner_uids = state.partner_uids
            if state.dedup:
                low = positions + 1
                high = np.minimum(positions + window, len(partner_uids))
            else:
                partner_positions = state.partner_positions
                low = np.searchsorted(
                    partner_positions, positions - (window - 1), side="left"
                )
                high = np.searchsorted(
                    partner_positions, positions + window, side="left"
                )
            return [
                partner_uids[lo:hi]
                for lo, hi in zip(low.tolist(), high.tolist())
            ]

        if session is not None:
            session.record_probe(batches=1)
        return fan_entity_chunks(session, entities, probe)

    def probe_uids(self, index, partners):
        return tuple(partners)

    def affected_probe_uids(
        self, source_a, source_b, deltas_a, deltas_b, session=None
    ):
        """Probe entities whose sliding window may have changed.

        Sorted-neighbourhood candidates couple *positionally*: an
        insert or delete anywhere shifts every later merged position by
        one, so a window's membership can change even when none of its
        occupants did. The bound used here: a probe entity's window
        content can only differ between the old and new epoch if the
        entity sits within ``window + total_changed`` positions of a
        changed entry — in *old* merged coordinates of a removed entry,
        or *new* coordinates of an upserted one (positions shift by at
        most the number of changed entries, so the margin absorbs the
        drift; any membership flip has a changed entry between the two
        endpoints in one of the coordinate systems).

        Old-epoch geometry is rebuilt from the *peeked* chain-base
        index payloads; when either side's old payload is no longer in
        the session memo or store, returns None (full rescore).
        """
        dedup = source_a is source_b
        deltas_a = tuple(deltas_a)
        deltas_b = deltas_a if dedup else tuple(deltas_b)
        chains = (deltas_a,) if dedup else (deltas_a, deltas_b)
        changed_total = sum(
            len(delta.upserts) + len(delta.deletes)
            for chain in chains
            for delta in chain
        )
        if changed_total == 0:
            return frozenset()
        token = self.signature()

        def old_payload(source, deltas):
            if not deltas:
                # Side unchanged: the current index *is* the old one.
                return self.build_index(source, session=session)
            if session is None:
                return None
            return session.peek_blocking_index(
                deltas[0].parent_fingerprint, token
            )

        old_a = old_payload(source_a, deltas_a)
        if old_a is None:
            return None
        state = self.probe_index(source_a, source_b, session=session)
        if dedup:
            old_pos_of = {uid: pos for pos, (__, uid) in enumerate(old_a)}
            old_pos_of_b = old_pos_of
            new_partner_pos_of: Mapping[str, int] = state.position_of
        else:
            old_b = old_payload(source_b, deltas_b)
            if old_b is None:
                return None
            old_positions_a, old_positions_b = _snb_merged_positions(
                old_a, old_b
            )
            old_pos_of = {
                uid: int(pos)
                for (__, uid), pos in zip(old_a, old_positions_a.tolist())
            }
            old_pos_of_b = {
                uid: int(pos)
                for (__, uid), pos in zip(old_b, old_positions_b.tolist())
            }
            new_partner_pos_of = {
                uid: int(pos)
                for uid, pos in zip(
                    state.partner_uids, state.partner_positions.tolist()
                )
            }

        changed_old: set[int] = set()
        changed_new: set[int] = set()

        def collect(chain, old_map, new_map):
            for delta in chain:
                for entity in delta.old_entities():
                    pos = old_map.get(entity.uid)
                    if pos is not None:
                        changed_old.add(pos)
                for entity in delta.upserts:
                    pos = new_map.get(entity.uid)
                    if pos is not None:
                        changed_new.add(pos)

        collect(deltas_a, old_pos_of, state.position_of)
        if not dedup:
            collect(deltas_b, old_pos_of_b, new_partner_pos_of)

        margin = self._window + changed_total
        affected: set[str] = set()
        probe_uids = [entity.uid for entity in state.probe_entities]
        near_new = _near_mask(
            state.positions,
            np.array(sorted(changed_new), dtype=np.int64),
            margin,
        )
        affected.update(
            uid for uid, flag in zip(probe_uids, near_new.tolist()) if flag
        )
        old_uids: list[str] = []
        old_positions: list[int] = []
        for uid in probe_uids:
            pos = old_pos_of.get(uid)
            if pos is not None:
                old_uids.append(uid)
                old_positions.append(pos)
        near_old = _near_mask(
            np.array(old_positions, dtype=np.int64),
            np.array(sorted(changed_old), dtype=np.int64),
            margin,
        )
        affected.update(
            uid for uid, flag in zip(old_uids, near_old.tolist()) if flag
        )
        return frozenset(affected)

    def iter_affected_shards(
        self, source_a, source_b, affected, batch_size, session=None
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return _chunked(
            self._iter_affected_pairs(source_a, source_b, affected, session),
            batch_size,
        )

    def _iter_affected_pairs(self, source_a, source_b, affected, session):
        """Pairs touching ``affected``, each exactly once, probing only
        the affected entities. Dedup mode recovers the *backward*
        window of each probed entity (pairs whose forward owner is an
        unaffected earlier neighbour) by slicing the merged order
        directly, skipping partners that are themselves affected —
        those pairs are already owned by the partner's own forward
        probe."""
        state = self.probe_index(source_a, source_b, session=session)
        window = self._window
        entities = [
            entity
            for entity in state.probe_entities
            if entity.uid in affected
        ]
        get_a = source_a.get
        get_b = source_b.get
        partner_uids = state.partner_uids
        for start in range(0, len(entities), _PROBE_CHUNK):
            chunk = entities[start : start + _PROBE_CHUNK]
            for entity_i, uids in zip(
                chunk, self.probe_batch(chunk, state, session)
            ):
                if state.dedup:
                    uid_i = entity_i.uid
                    pos = state.position_of[uid_i]
                    low = max(0, pos - window + 1)
                    for uid_j in partner_uids[low:pos]:
                        if uid_j not in affected:
                            if uid_i < uid_j:
                                yield entity_i, get_a(uid_j)
                            else:
                                yield get_a(uid_j), entity_i
                    for uid_j in uids:
                        if uid_i < uid_j:
                            yield entity_i, get_a(uid_j)
                        else:
                            yield get_a(uid_j), entity_i
                else:
                    yield from zip(repeat(entity_i), map(get_b, uids))

    def _iter_pairs(self, source_a, source_b, session):
        state = self.probe_index(source_a, source_b, session=session)
        entities = state.probe_entities
        get_a = source_a.get
        get_b = source_b.get
        for start in range(0, len(entities), _PROBE_CHUNK):
            chunk = entities[start : start + _PROBE_CHUNK]
            for entity_i, uids in zip(
                chunk, self.probe_batch(chunk, state, session)
            ):
                if state.dedup:
                    # Each unordered pair once (forward window); the
                    # emitted pair is uid-ordered like the seed.
                    uid_i = entity_i.uid
                    for uid_j in uids:
                        if uid_i < uid_j:
                            yield entity_i, get_a(uid_j)
                        else:
                            yield get_a(uid_j), entity_i
                else:
                    yield from zip(repeat(entity_i), map(get_b, uids))


def _root_property(node: ValueNode) -> str | None:
    """The left-most property a value tree reads, if any."""
    while isinstance(node, TransformationNode):
        node = node.inputs[0]
    if isinstance(node, PropertyNode):
        return node.property_name
    return None


class RuleBlocker(Blocker):
    """Rule-aware blocking: token-block on the properties the rule
    compares (the MultiBlock idea, simplified).

    Every comparison contributes its source/target property pair as a
    blocking key, so any pair the rule could plausibly match shares at
    least one token on at least one compared property.
    """

    def __init__(self, rule: LinkageRule, max_block_size: int = 200):
        properties_a: list[str] = []
        properties_b: list[str] = []
        for comparison in rule.comparisons():
            prop_a = _root_property(comparison.source)
            prop_b = _root_property(comparison.target)
            if prop_a is not None and prop_b is not None:
                properties_a.append(prop_a)
                properties_b.append(prop_b)
        if not properties_a:
            raise ValueError("rule has no property-based comparisons to block on")
        self._delegate = TokenBlocker(
            properties_a, properties_b, max_block_size=max_block_size
        )

    def signature(self) -> str:
        return self._delegate.signature()

    def build_index(self, source, session=None):
        return self._delegate.build_index(source, session=session)

    def probe_index(self, source_a, source_b, session=None):
        return self._delegate.probe_index(source_a, source_b, session=session)

    def probe_batch(self, entities, index, session=None):
        return self._delegate.probe_batch(entities, index, session=session)

    def probe_uids(self, index, partners):
        return self._delegate.probe_uids(index, partners)

    def affected_probe_uids(
        self, source_a, source_b, deltas_a, deltas_b, session=None
    ):
        return self._delegate.affected_probe_uids(
            source_a, source_b, deltas_a, deltas_b, session=session
        )

    def iter_affected_shards(
        self, source_a, source_b, affected, batch_size, session=None
    ):
        return self._delegate.iter_affected_shards(
            source_a, source_b, affected, batch_size, session=session
        )

    def candidates(self, source_a, source_b):
        return self._delegate.candidates(source_a, source_b)

    def _iter_pairs(self, source_a, source_b, session):
        return self._delegate._iter_pairs(source_a, source_b, session)
