"""Date distance in days (Table 2: ``date``)."""

from __future__ import annotations

import datetime as _dt
import re
from typing import Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    absdiff_column,
    min_over_pairs,
)

_FORMATS = (
    "%Y-%m-%d",
    "%Y/%m/%d",
    "%d.%m.%Y",
    "%d/%m/%Y",
    "%m/%d/%Y",
    "%B %d, %Y",
    "%d %B %Y",
    "%b %d, %Y",
)

_YEAR_RE = re.compile(r"^\s*(\d{4})\s*$")


def parse_date(value: str) -> _dt.date | None:
    """Parse a date string; bare years resolve to January 1st."""
    text = value.strip()
    year_match = _YEAR_RE.match(text)
    if year_match is not None:
        year = int(year_match.group(1))
        if 1 <= year <= 9999:
            return _dt.date(year, 1, 1)
        return None
    for fmt in _FORMATS:
        try:
            return _dt.datetime.strptime(text, fmt).date()
        except ValueError:
            continue
    return None


def _pair_distance(a: str, b: str) -> float:
    da = parse_date(a)
    db = parse_date(b)
    if da is None or db is None:
        return INFINITE_DISTANCE
    return float(abs((da - db).days))


def _parse_ordinal(value: str) -> float | None:
    """Parse a date to its proleptic ordinal as a float.

    ``abs((da - db).days)`` equals ``abs(ordinal_a - ordinal_b)``
    exactly, and ordinals (< 3.7 million) are exact in float64, so the
    batch kernel's vectorized difference is bit-identical to the scalar
    ``timedelta`` arithmetic.
    """
    date = parse_date(value)
    return None if date is None else float(date.toordinal())


class DateDistance(DistanceMeasure):
    """Absolute difference between two dates in days."""

    name = "date"
    threshold_range = (0.0, 730.0)
    batch_capable = True

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return min_over_pairs(values_a, values_b, _pair_distance)

    def evaluate_column(
        self, columns_a: ValueColumn, columns_b: ValueColumn
    ) -> np.ndarray:
        """Vectorized day differences over parsed date ordinals: each
        distinct value set runs ``strptime`` once per batch instead of
        once per pair, singleton rows reduce to one ``|a - b|`` numpy
        expression."""
        return absdiff_column(columns_a, columns_b, _parse_ordinal)
