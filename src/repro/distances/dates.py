"""Date distance in days (Table 2: ``date``)."""

from __future__ import annotations

import datetime as _dt
import re
from typing import Sequence

from repro.distances.base import DistanceMeasure, INFINITE_DISTANCE, min_over_pairs

_FORMATS = (
    "%Y-%m-%d",
    "%Y/%m/%d",
    "%d.%m.%Y",
    "%d/%m/%Y",
    "%m/%d/%Y",
    "%B %d, %Y",
    "%d %B %Y",
    "%b %d, %Y",
)

_YEAR_RE = re.compile(r"^\s*(\d{4})\s*$")


def parse_date(value: str) -> _dt.date | None:
    """Parse a date string; bare years resolve to January 1st."""
    text = value.strip()
    year_match = _YEAR_RE.match(text)
    if year_match is not None:
        year = int(year_match.group(1))
        if 1 <= year <= 9999:
            return _dt.date(year, 1, 1)
        return None
    for fmt in _FORMATS:
        try:
            return _dt.datetime.strptime(text, fmt).date()
        except ValueError:
            continue
    return None


def _pair_distance(a: str, b: str) -> float:
    da = parse_date(a)
    db = parse_date(b)
    if da is None or db is None:
        return INFINITE_DISTANCE
    return float(abs((da - db).days))


class DateDistance(DistanceMeasure):
    """Absolute difference between two dates in days."""

    name = "date"
    threshold_range = (0.0, 730.0)

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return min_over_pairs(values_a, values_b, _pair_distance)
