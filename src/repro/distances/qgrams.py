"""Q-gram and soft-Jaccard string distances (Silk catalogue).

Two further measures the Silk framework ships for string matching:

* :class:`QGramsDistance` — Jaccard distance over padded character
  q-grams. Robust to small edits anywhere in the string and cheap to
  index (the MultiBlock q-gram indexer is exact for it).
* :class:`SoftJaccardDistance` — Jaccard over whitespace tokens where
  two tokens already count as equal when their Levenshtein distance is
  within a small budget; tolerates typos inside otherwise token-equal
  names.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    fallback_column,
    min_over_pairs,
)
from repro.distances.levenshtein import levenshtein
from repro.distances.strings import BoundedValueMemo


def qgrams(value: str, q: int = 2) -> set[str]:
    """Padded q-grams of one string (``^`` and ``$`` mark the ends).

    Strings shorter than ``q`` (after padding) yield themselves, so no
    value ever maps to an empty gram set.
    """
    text = f"^{value}$"
    if len(text) <= q:
        return {text}
    return {text[i : i + q] for i in range(len(text) - q + 1)}


class QGramsDistance(DistanceMeasure):
    """Jaccard distance over padded q-grams, minimised over value pairs."""

    name = "qgrams"
    threshold_range = (0.1, 1.0)
    batch_capable = True

    def __init__(self, q: int = 2):
        if q < 1:
            raise ValueError("q must be >= 1")
        self._q = q

    def _pair_distance(self, a: str, b: str) -> float:
        grams_a = qgrams(a.lower(), self._q)
        grams_b = qgrams(b.lower(), self._q)
        intersection = len(grams_a & grams_b)
        union = len(grams_a | grams_b)
        return 1.0 - intersection / union

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return min_over_pairs(values_a, values_b, self._pair_distance)

    def evaluate_column(
        self, columns_a: ValueColumn, columns_b: ValueColumn
    ) -> np.ndarray:
        """Batch q-gram Jaccard: gram sets are built once per distinct
        string and the set intersections once per distinct string pair,
        instead of once per candidate pair; value-set combinations
        dedupe through :func:`repro.distances.base.fallback_column`.
        The min-over-pairs control flow (budget, early exit) is shared
        with the scalar path, so results are bit-identical."""
        grams_cache: dict[str, set[str]] = {}
        pair_cache: dict[tuple[str, str], float] = {}
        q = self._q

        def pair_distance(a: str, b: str) -> float:
            key = (a, b)
            distance = pair_cache.get(key)
            if distance is None:
                grams_a = grams_cache.get(a)
                if grams_a is None:
                    grams_a = qgrams(a.lower(), q)
                    grams_cache[a] = grams_a
                grams_b = grams_cache.get(b)
                if grams_b is None:
                    grams_b = qgrams(b.lower(), q)
                    grams_cache[b] = grams_b
                intersection = len(grams_a & grams_b)
                union = len(grams_a | grams_b)
                distance = 1.0 - intersection / union
                pair_cache[key] = distance
            return distance

        return fallback_column(
            lambda values_a, values_b: min_over_pairs(
                values_a, values_b, pair_distance
            ),
            columns_a,
            columns_b,
        )


class SoftJaccardDistance(DistanceMeasure):
    """Jaccard over tokens with Levenshtein-tolerant token equality.

    A token of one side is covered when the other side has a token
    within ``max_token_distance`` edits; the distance is one minus
    covered-tokens / total-distinct-tokens (a symmetric soft overlap).
    """

    name = "softJaccard"
    threshold_range = (0.1, 1.0)

    def __init__(self, max_token_distance: int = 1):
        if max_token_distance < 0:
            raise ValueError("max_token_distance must be >= 0")
        self._max_token_distance = max_token_distance
        # Value tuples recur across calls (one tuple per unique
        # entity), so token lists are memoised per distinct tuple.
        self._token_memo = BoundedValueMemo()

    def _tokens(self, values: Sequence[str]) -> list[str]:
        return self._token_memo.get(values, self._split)

    @staticmethod
    def _split(values: Sequence[str]) -> list[str]:
        tokens: list[str] = []
        seen: set[str] = set()
        for value in values:
            for token in value.lower().split():
                if token not in seen:
                    seen.add(token)
                    tokens.append(token)
        return tokens

    def _covered(self, tokens_a: list[str], tokens_b: list[str]) -> int:
        budget = self._max_token_distance
        covered = 0
        for token in tokens_a:
            for other in tokens_b:
                if levenshtein(token, other, bound=budget) <= budget:
                    covered += 1
                    break
        return covered

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        tokens_a = self._tokens(values_a)
        tokens_b = self._tokens(values_b)
        if not tokens_a or not tokens_b:
            return INFINITE_DISTANCE
        covered = self._covered(tokens_a, tokens_b) + self._covered(
            tokens_b, tokens_a
        )
        total = len(tokens_a) + len(tokens_b)
        return 1.0 - covered / total
