"""Exact-equality distance.

A degenerate measure (0 if any value is shared, 1 otherwise) useful for
identifier properties such as CAS numbers in the drug datasets, and as a
cheap building block in tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.distances.base import DistanceMeasure, INFINITE_DISTANCE


class EqualityDistance(DistanceMeasure):
    """0.0 when the value sets intersect, 1.0 otherwise."""

    name = "equality"
    threshold_range = (0.0, 0.9)

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        if not values_a or not values_b:
            return INFINITE_DISTANCE
        set_b = set(values_b)
        if any(v in set_b for v in values_a):
            return 0.0
        return 1.0
