"""Exact-equality distance.

A degenerate measure (0 if any value is shared, 1 otherwise) useful for
identifier properties such as CAS numbers in the drug datasets, and as a
cheap building block in tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    fallback_column,
)


class EqualityDistance(DistanceMeasure):
    """0.0 when the value sets intersect, 1.0 otherwise."""

    name = "equality"
    threshold_range = (0.0, 0.9)
    batch_capable = True

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        if not values_a or not values_b:
            return INFINITE_DISTANCE
        set_b = set(values_b)
        if any(v in set_b for v in values_a):
            return 0.0
        return 1.0

    def evaluate_column(
        self, columns_a: ValueColumn, columns_b: ValueColumn
    ) -> np.ndarray:
        """Batch equality: singleton rows are interned to integer codes
        and compared as one vectorized ``==``; multi-valued rows take
        the deduplicated set-intersection fallback
        (:func:`repro.distances.base.fallback_column`)."""
        if len(columns_a) != len(columns_b):
            raise ValueError(
                f"column length mismatch: {len(columns_a)} vs {len(columns_b)}"
            )
        n = len(columns_a)
        out = np.full(n, INFINITE_DISTANCE, dtype=np.float64)
        codes: dict[str, int] = {}
        # -1 marks rows outside the singleton fast path; distinct codes
        # on the two sides can never compare equal by construction.
        codes_a = np.full(n, -1, dtype=np.int64)
        codes_b = np.full(n, -2, dtype=np.int64)
        slow_rows: list[int] = []
        for i, (values_a, values_b) in enumerate(zip(columns_a, columns_b)):
            if not values_a or not values_b:
                continue
            if len(values_a) == 1 and len(values_b) == 1:
                codes_a[i] = codes.setdefault(values_a[0], len(codes))
                codes_b[i] = codes.setdefault(values_b[0], len(codes))
            else:
                slow_rows.append(i)
        fast = codes_a >= 0
        out[fast] = np.where(codes_a[fast] == codes_b[fast], 0.0, 1.0)
        if slow_rows:
            out[slow_rows] = fallback_column(
                self.evaluate,
                [columns_a[i] for i in slow_rows],
                [columns_b[i] for i in slow_rows],
            )
        return out
