"""Jaro and Jaro-Winkler string similarity.

Not part of GenLink's Table 2, but the Carvalho et al. baseline (the
state-of-the-art GP approach the paper compares against) presupplies
``<attribute, similarity>`` pairs including Jaro, so we implement both
measures from scratch. Distances are ``1 - similarity``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    fallback_column,
    min_over_pairs,
)
from repro.distances.strings import (
    StringKernelMemo,
    batch_pair_column,
    count_nonempty,
    jaro_pairs,
    string_backend,
)


def jaro_similarity(a: str, b: str) -> float:
    """Classic Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    if window < 0:
        window = 0
    matched_a = [False] * la
    matched_b = [False] * lb
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == ca:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(la):
        if matched_a[i]:
            while not matched_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / la + m / lb + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro similarity boosted by a shared prefix of up to 4 characters."""
    base = jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


class JaroDistance(DistanceMeasure):
    """1 - Jaro similarity, lifted to value sets via the minimum."""

    name = "jaro"
    threshold_range = (0.0, 0.5)
    batch_capable = True
    memo_capable = True

    #: Jaro winkler-prefix scale, or None for plain Jaro. The batch
    #: kernel is shared between the two measures through this knob.
    _prefix_scale: float | None = None

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return min_over_pairs(
            values_a, values_b, lambda x, y: 1.0 - jaro_similarity(x, y)
        )

    def evaluate_column(
        self,
        columns_a: ValueColumn,
        columns_b: ValueColumn,
        memo: StringKernelMemo | None = None,
    ) -> np.ndarray:
        # The rapidfuzz backend covers only the integer-valued
        # levenshtein family; Jaro similarities are floats whose bit
        # pattern depends on expression order, so they always use the
        # numpy kernel (which mirrors the scalar order exactly).
        backend = string_backend()
        if backend == "python":
            if memo is not None:
                memo.record_routing(
                    self.name, fallback=count_nonempty(columns_a, columns_b)
                )
            return fallback_column(self.evaluate, columns_a, columns_b)
        prefix_scale = self._prefix_scale

        def kernel(strings_a, strings_b):
            return 1.0 - jaro_pairs(
                strings_a, strings_b, memo=memo, prefix_scale=prefix_scale
            )

        return batch_pair_column(
            columns_a, columns_b, kernel, self.evaluate, memo=memo, name=self.name
        )


class JaroWinklerDistance(JaroDistance):
    """1 - Jaro-Winkler similarity, lifted to value sets via the minimum."""

    name = "jaroWinkler"
    threshold_range = (0.0, 0.5)
    _prefix_scale = 0.1

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return min_over_pairs(
            values_a, values_b, lambda x, y: 1.0 - jaro_winkler_similarity(x, y)
        )
