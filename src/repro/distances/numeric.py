"""Numeric difference distance (Table 2: ``numeric``)."""

from __future__ import annotations

import re
from typing import Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    absdiff_column,
    min_over_pairs,
)

_NUMBER_RE = re.compile(r"[-+]?\d+(?:[.,]\d+)?(?:[eE][-+]?\d+)?")


def parse_number(value: str) -> float | None:
    """Extract the first number from a string, or None.

    Accepts both ``.`` and ``,`` decimal separators, a common divergence
    between data sources (e.g. "3,5 mg" vs "3.5mg").
    """
    match = _NUMBER_RE.search(value.strip())
    if match is None:
        return None
    text = match.group(0).replace(",", ".")
    try:
        return float(text)
    except ValueError:  # pragma: no cover - regex should guarantee parse
        return None


def _pair_distance(a: str, b: str) -> float:
    na = parse_number(a)
    nb = parse_number(b)
    if na is None or nb is None:
        return INFINITE_DISTANCE
    return abs(na - nb)


class NumericDistance(DistanceMeasure):
    """Absolute numeric difference; unparseable values are infinitely far."""

    name = "numeric"
    threshold_range = (0.0, 10.0)
    batch_capable = True

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return min_over_pairs(values_a, values_b, _pair_distance)

    def evaluate_column(
        self, columns_a: ValueColumn, columns_b: ValueColumn
    ) -> np.ndarray:
        """Vectorized ``|a - b|`` over parsed numbers (see
        :func:`repro.distances.base.absdiff_column`): each distinct
        value set is regex-parsed once per batch instead of once per
        pair, and singleton rows run as one numpy expression."""
        return absdiff_column(columns_a, columns_b, parse_number)
