"""Vectorized batch kernels for the string-measure family.

The levenshtein, jaro/jaro-winkler and jaccard/token measures were the
last measures still running the deduplicated per-pair Python fallback in
``DistanceMeasure.evaluate_column``. This module gives them real batch
kernels over **pre-encoded integer code matrices**:

* :func:`levenshtein_pairs` — a clamped edit-distance DP run as numpy
  row sweeps across the whole distinct-pair column at once. Strings are
  encoded once into int32 code-point arrays (UTF-32 — one code per
  Python character, so batch equality is exactly ``str`` equality),
  padded into per-chunk matrices, and the classic row recurrence is
  evaluated for all pairs simultaneously; the sequential insertion
  dependency inside a row becomes a logarithmic min-plus doubling scan.
  The band contract: every intermediate cell is clamped at
  ``bound + 1``, which provably yields ``min(true_distance, bound + 1)``
  per pair, the length-difference pre-filter is one vectorized mask,
  and pairs whose entire DP row hits the clamp are retired early
  (the batch analogue of the scalar loop's early exit).
* :func:`jaro_pairs` — bulk Jaro / Jaro-Winkler over the same encoded
  matrices: the greedy match-window scan runs one character position at
  a time across all pairs (first-fit ``argmax`` per row reproduces the
  scalar loop's leftmost-unmatched choice exactly), transpositions are
  counted by stable-argsort compaction of the matched flags, and the
  final similarity arithmetic keeps the scalar expression's operation
  order so IEEE float64 results are bit-identical.
* :func:`set_algebra_column` — jaccard/dice/overlap as set algebra over
  an interned integer token-code space: each distinct value tuple is
  encoded once into a sorted-unique int64 code array, and intersection
  sizes for *all* distinct tuple combinations are computed with one
  sort over ``combo_id * token_space + code`` keys (each side holds
  unique codes, so every adjacent duplicate is exactly one shared
  token).

Backends are selected via the ``REPRO_ENGINE_STRING_BACKEND``
environment variable (:func:`string_backend`): ``numpy`` (the default)
uses the kernels above, ``python`` forces the per-pair fallback (the
parity oracle), ``rapidfuzz`` uses the optional native backend for the
levenshtein family (bit-identical by construction — integer distances
with ``score_cutoff`` matching the scalar clamp contract) and the numpy
kernels elsewhere, and ``auto`` picks ``rapidfuzz`` when the package is
importable. Every backend is bit-identical to the scalar oracle; only
wall-clock changes.

:class:`StringKernelMemo` is the session-scoped carrier for the
encoded-matrix memoisation (per distinct string / per distinct value
tuple, bounded like the blocking probe memo) and for the per-measure
kernel-routing counters surfaced in ``EngineStats``/``MatchStats``.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Sequence

import numpy as np

from repro.distances.base import INFINITE_DISTANCE

#: Environment variable selecting the string-kernel backend
#: (``numpy`` | ``rapidfuzz`` | ``python`` | ``auto``; unset = numpy).
BACKEND_ENV = "REPRO_ENGINE_STRING_BACKEND"

#: Size bound for each memo table; at the bound the table is dropped
#: wholesale (resets warm-up, never results) — the same policy as the
#: blocking probe memo.
_MEMO_LIMIT = 65536

#: Cell budget for one padded DP/matching matrix (rows x width). Chunks
#: are cut so no intermediate matrix exceeds this many int32 cells,
#: which keeps one pathologically long string from inflating the
#: padding of thousands of short ones.
_CELL_BUDGET = 1 << 20

_RAPIDFUZZ: object = None  # None = unprobed, False = unavailable


def _rapidfuzz_levenshtein():
    """The ``rapidfuzz.distance.Levenshtein`` module, or None when the
    optional dependency is not installed (probed once per process)."""
    global _RAPIDFUZZ
    if _RAPIDFUZZ is None:
        try:
            from rapidfuzz.distance import Levenshtein  # noqa: deferred

            _RAPIDFUZZ = Levenshtein
        except ImportError:
            _RAPIDFUZZ = False
    return _RAPIDFUZZ if _RAPIDFUZZ is not False else None


def string_backend() -> str:
    """Resolve the active string-kernel backend.

    Reads ``REPRO_ENGINE_STRING_BACKEND`` on every call (cheap, and
    lets tests flip backends without re-importing): ``numpy`` is the
    default, ``python`` forces the scalar per-pair fallback, and
    ``rapidfuzz`` requires the package (``auto`` degrades to numpy
    without it). Whatever the backend, results are bit-identical —
    the selection only moves wall-clock.
    """
    spec = os.environ.get(BACKEND_ENV, "").strip().lower() or "numpy"
    if spec == "auto":
        return "rapidfuzz" if _rapidfuzz_levenshtein() is not None else "numpy"
    if spec not in ("numpy", "rapidfuzz", "python"):
        raise ValueError(
            f"invalid {BACKEND_ENV} value {spec!r}: expected auto, numpy, "
            f"rapidfuzz or python"
        )
    if spec == "rapidfuzz" and _rapidfuzz_levenshtein() is None:
        raise RuntimeError(
            f"{BACKEND_ENV}=rapidfuzz but the rapidfuzz package is not "
            f"installed; pip install rapidfuzz or use the numpy backend"
        )
    return spec


def encode_string(value: str) -> np.ndarray:
    """One string as an int32 array of Unicode code points.

    UTF-32-LE gives exactly one code unit per Python character, so
    elementwise comparison of encoded arrays is exactly ``str``
    character equality — including combining marks and astral-plane
    characters, which stay separate code points just like they do for
    the scalar measures.
    """
    return np.frombuffer(value.encode("utf-32-le"), dtype="<i4")


def _local_encoder() -> Callable[[str], np.ndarray]:
    """Per-call encode memo for kernels invoked without a session memo.

    Pair columns repeat the same strings heavily (a few hundred unique
    entities fanned over thousands of pairs), so even a single batch
    call amortises encoding across occurrences.
    """
    table: dict[str, np.ndarray] = {}

    def encode(value: str) -> np.ndarray:
        codes = table.get(value)
        if codes is None:
            codes = encode_string(value)
            table[value] = codes
        return codes

    return encode


class StringKernelMemo:
    """Session-scoped encode memo + kernel-routing counters.

    Three bounded tables, each dropped wholesale at the limit (the
    probe-memo policy — resets warm-up, never results):

    * per distinct **string**: its int32 code-point array (levenshtein
      and jaro kernels);
    * per distinct **value tuple** (identity-keyed; the engine hands
      out one tuple object per unique entity and keeps it alive in the
      value cache): its sorted-unique token-code array over a shared
      interning table (jaccard/dice/overlap set algebra);
    * per **measure name**: counts of pairs routed through the batch
      kernel vs the per-pair fallback, surfaced as
      ``EngineStats.kernel_routing``.

    Thread-safe: the token table and the counters take a lock (token
    ids have a cross-key invariant), the string-code table relies on
    GIL-atomic dict operations — races there only duplicate pure work.
    """

    def __init__(self, limit: int = _MEMO_LIMIT):
        self._limit = limit
        self._codes: dict[str, np.ndarray] = {}
        self._token_ids: dict[str, int] = {}
        #: id(tuple) -> (tuple, sorted unique code array); the tuple is
        #: kept alive so its id cannot be recycled while cached.
        self._token_sets: dict[int, tuple] = {}
        self._routing: dict[str, list[int]] = {}
        self._lock = threading.Lock()

    def codes(self, value: str) -> np.ndarray:
        """Encoded code-point array of one string (memoised)."""
        arr = self._codes.get(value)
        if arr is None:
            if len(self._codes) >= self._limit:
                self._codes.clear()
            arr = encode_string(value)
            self._codes[value] = arr
        return arr

    def token_sets(
        self, value_sets: Sequence[Sequence[str]]
    ) -> tuple[list[np.ndarray], int]:
        """Sorted-unique token-code arrays for value tuples, plus the
        current token-space size (every returned code is below it).

        One lock window covers the whole batch so a concurrent bound
        reset can never mix code assignments from two table
        generations within one caller's result list.
        """
        with self._lock:
            if (
                len(self._token_ids) >= self._limit
                or len(self._token_sets) >= self._limit
            ):
                self._token_ids.clear()
                self._token_sets.clear()
            table = self._token_ids
            sets = self._token_sets
            results: list[np.ndarray] = []
            for values in value_sets:
                key = id(values)
                entry = sets.get(key)
                if entry is None:
                    ids = {table.setdefault(v, len(table)) for v in values}
                    entry = (values, np.array(sorted(ids), dtype=np.int64))
                    sets[key] = entry
                results.append(entry[1])
            return results, len(table)

    # -- routing counters -----------------------------------------------------
    def record_routing(self, name: str, batch: int = 0, fallback: int = 0) -> None:
        """Count pairs routed through a measure's batch kernel vs the
        per-pair fallback (empty-side pairs are counted by neither)."""
        if not batch and not fallback:
            return
        with self._lock:
            entry = self._routing.get(name)
            if entry is None:
                self._routing[name] = entry = [0, 0]
            entry[0] += batch
            entry[1] += fallback

    def routing(self) -> tuple[tuple[str, int, int], ...]:
        """Snapshot of the per-measure counters as sorted
        ``(measure, batch_pairs, fallback_pairs)`` triples."""
        with self._lock:
            return tuple(
                sorted((k, v[0], v[1]) for k, v in self._routing.items())
            )


class BoundedValueMemo:
    """Bounded identity-keyed memo for data derived from value tuples.

    Used by the token-based measures to stop re-tokenising each value
    on every scalar call: the derived data (token lists) is cached per
    distinct value tuple, keyed by identity — the engine hands out one
    tuple object per unique entity — with the tuple kept alive in the
    entry so its id cannot be recycled while cached. At the bound the
    table is dropped wholesale, the probe-memo policy.
    """

    __slots__ = ("_limit", "_table")

    def __init__(self, limit: int = _MEMO_LIMIT):
        self._limit = limit
        self._table: dict[int, tuple] = {}

    def get(self, values, build: Callable):
        entry = self._table.get(id(values))
        if entry is None:
            if len(self._table) >= self._limit:
                self._table.clear()
            entry = (values, build(values))
            self._table[id(values)] = entry
        return entry[1]


def routing_delta(
    current: tuple[tuple[str, int, int], ...],
    baseline: "tuple[tuple[str, int, int], ...] | None",
) -> tuple[tuple[str, int, int], ...]:
    """Per-run routing counters: ``current - baseline`` per measure."""
    if not baseline:
        return current
    base = {name: (batch, fallback) for name, batch, fallback in baseline}
    out = []
    for name, batch, fallback in current:
        b_batch, b_fallback = base.get(name, (0, 0))
        batch, fallback = batch - b_batch, fallback - b_fallback
        if batch or fallback:
            out.append((name, batch, fallback))
    return tuple(out)


def routing_merged(
    snapshots: Sequence[tuple[tuple[str, int, int], ...]],
) -> tuple[tuple[str, int, int], ...]:
    """Sum routing snapshots across worker sessions."""
    totals: dict[str, list[int]] = {}
    for snapshot in snapshots:
        for name, batch, fallback in snapshot:
            entry = totals.setdefault(name, [0, 0])
            entry[0] += batch
            entry[1] += fallback
    return tuple(sorted((k, v[0], v[1]) for k, v in totals.items()))


def count_nonempty(columns_a, columns_b) -> int:
    """Pairs where both sides have values (the pairs a kernel actually
    evaluates — the routing-counter unit)."""
    return sum(1 for a, b in zip(columns_a, columns_b) if a and b)


# -- levenshtein ----------------------------------------------------------------


def levenshtein_pairs(
    strings_a: Sequence[str],
    strings_b: Sequence[str],
    bound: int | None = None,
    memo: StringKernelMemo | None = None,
) -> np.ndarray:
    """Edit distances for aligned string pairs, as float64.

    With ``bound`` the result is exactly ``min(d, bound + 1)`` per pair
    — the scalar :func:`repro.distances.levenshtein.levenshtein`
    contract. The DP runs as vectorized row sweeps over all pairs at
    once; every cell is clamped at ``bound + 1`` (which by induction
    clamps the final value and nothing else), ``|len(a) - len(b)| >
    bound`` pairs are pre-filtered as one mask, and pairs whose whole
    DP row reaches the clamp retire early.
    """
    count = len(strings_a)
    out = np.empty(count, dtype=np.float64)
    if count == 0:
        return out
    la = np.fromiter(map(len, strings_a), np.int64, count)
    lb = np.fromiter(map(len, strings_b), np.int64, count)
    eq = np.fromiter(
        (x == y for x, y in zip(strings_a, strings_b)), np.bool_, count
    )
    out[eq] = 0.0
    todo = ~eq
    if bound is not None:
        over = (np.abs(la - lb) > bound) & todo
        out[over] = float(bound + 1)
        todo &= ~over
    indexes = np.flatnonzero(todo)
    if indexes.size == 0:
        return out
    encode = memo.codes if memo is not None else _local_encoder()
    shorts: list[np.ndarray] = []
    longs: list[np.ndarray] = []
    for i in indexes.tolist():
        a, b = strings_a[i], strings_b[i]
        if len(a) > len(b):
            a, b = b, a
        shorts.append(encode(a))
        longs.append(encode(b))
    slen = np.minimum(la[indexes], lb[indexes])
    llen = np.maximum(la[indexes], lb[indexes])
    if bound is not None:
        cap = bound + 1
    else:
        cap = int(llen.max()) + 1  # unreachable: d <= max(la, lb)
    order = np.argsort(llen, kind="stable")
    for chunk in _budget_chunks(order, slen, llen):
        rows = _lev_chunk(
            [shorts[i] for i in chunk.tolist()],
            [longs[i] for i in chunk.tolist()],
            slen[chunk],
            llen[chunk],
            cap,
        )
        out[indexes[chunk]] = rows
    return out


def _budget_chunks(order: np.ndarray, width_len: np.ndarray, depth_len: np.ndarray):
    """Split ``order`` (indexes sorted by cost driver) into chunks whose
    padded matrix ``rows x (max width + 1)`` stays within the cell
    budget, so one long string cannot inflate every row's padding."""
    start = 0
    count = order.size
    while start < count:
        end = start + 1
        max_width = int(width_len[order[start]])
        while end < count:
            width = max(max_width, int(width_len[order[end]]))
            if (end - start + 1) * (width + 1) > _CELL_BUDGET:
                break
            max_width = width
            end += 1
        yield order[start:end]
        start = end


def _pad_codes(arrays: list[np.ndarray], width: int, fill: int) -> np.ndarray:
    matrix = np.full((len(arrays), width), fill, dtype=np.int32)
    for row, arr in enumerate(arrays):
        if arr.size:
            matrix[row, : arr.size] = arr
    return matrix


def _lev_chunk(
    shorts: list[np.ndarray],
    longs: list[np.ndarray],
    slen: np.ndarray,
    llen: np.ndarray,
    cap: int,
) -> np.ndarray:
    """Clamped edit distances for one padded chunk (all pairs at once).

    Row sweep over the longer strings: ``prev``/``cur`` hold one DP row
    per pair. The in-row insertion dependency is resolved by a min-plus
    doubling scan (after step ``s``, ``cur[i]`` covers insertion chains
    up to ``2^s`` long — log2(width) vector ops instead of a sequential
    scan). Cells clamp at ``cap``; a pair whose whole row clamps can
    never come back under it (distances are bounded below by row
    minima along any alignment path), so those pairs retire with
    ``cap`` immediately — the vectorized early exit.
    """
    width = int(slen.max()) if slen.size else 0
    a_matrix = _pad_codes(shorts, max(width, 1), -1)
    b_matrix = _pad_codes(longs, int(llen.max()), -2)
    size = len(shorts)
    results = np.empty(size, dtype=np.int32)
    prev = np.minimum(np.arange(width + 1, dtype=np.int32), cap)
    prev = np.broadcast_to(prev, (size, width + 1)).copy()
    pending = np.arange(size)
    sw, lw = slen.astype(np.int64), llen.astype(np.int64)
    j = 1
    while pending.size:
        column = b_matrix[:, j - 1][:, None]
        cur = np.empty((pending.size, width + 1), dtype=np.int32)
        cur[:, 0] = min(j, cap)
        np.minimum(
            prev[:, :-1] + (a_matrix[:, :width] != column),
            prev[:, 1:] + 1,
            out=cur[:, 1:],
        )
        np.minimum(cur, cap, out=cur)
        shift = 1
        while shift <= width:
            cur[:, shift:] = np.minimum(
                cur[:, shift:], cur[:, :-shift] + shift
            )
            shift <<= 1
        np.minimum(cur, cap, out=cur)
        done = lw == j
        finished = done | (cur.min(axis=1) >= cap)
        if finished.any():
            if done.any():
                results[pending[done]] = cur[done, sw[done]]
            capped = finished & ~done
            if capped.any():
                results[pending[capped]] = cap
            keep = ~finished
            pending = pending[keep]
            a_matrix = a_matrix[keep]
            b_matrix = b_matrix[keep]
            sw, lw = sw[keep], lw[keep]
            prev = cur[keep]
        else:
            prev = cur
        j += 1
    return results.astype(np.float64)


def rapidfuzz_levenshtein_pairs(
    strings_a: Sequence[str],
    strings_b: Sequence[str],
    bound: int | None = None,
) -> np.ndarray:
    """Edit distances via the native rapidfuzz backend.

    ``score_cutoff`` makes rapidfuzz return ``bound + 1`` for any
    distance above the bound — exactly the scalar clamp contract — and
    distances are integers, so the backend is bit-identical by
    construction (no float rounding to diverge on).
    """
    lev = _rapidfuzz_levenshtein()
    if lev is None:  # pragma: no cover - guarded by string_backend()
        raise RuntimeError("rapidfuzz is not installed")
    distance = lev.distance
    if bound is None:
        values = [distance(a, b) for a, b in zip(strings_a, strings_b)]
    else:
        values = [
            distance(a, b, score_cutoff=bound)
            for a, b in zip(strings_a, strings_b)
        ]
    return np.array(values, dtype=np.float64)


# -- jaro / jaro-winkler --------------------------------------------------------


def jaro_pairs(
    strings_a: Sequence[str],
    strings_b: Sequence[str],
    memo: StringKernelMemo | None = None,
    prefix_scale: float | None = None,
) -> np.ndarray:
    """Jaro similarities for aligned string pairs (Jaro-Winkler when
    ``prefix_scale`` is given), bit-identical to the scalar loops.

    The greedy match scan runs one character position at a time across
    all pairs: a boolean candidate matrix (``==`` over the encoded
    codes, window mask, unmatched mask) and its per-row ``argmax``
    reproduce the scalar loop's first-unmatched-in-window choice
    exactly. Transpositions compare the k-th matched character of each
    side via stable-argsort compaction. The final arithmetic keeps the
    scalar expression order, so the float64 results match bit for bit.
    """
    count = len(strings_a)
    out = np.empty(count, dtype=np.float64)
    if count == 0:
        return out
    la = np.fromiter(map(len, strings_a), np.int64, count)
    lb = np.fromiter(map(len, strings_b), np.int64, count)
    eq = np.fromiter(
        (x == y for x, y in zip(strings_a, strings_b)), np.bool_, count
    )
    out[eq] = 1.0
    empty = ((la == 0) | (lb == 0)) & ~eq
    out[empty] = 0.0
    indexes = np.flatnonzero(~eq & ~empty)
    if indexes.size == 0:
        return out
    encode = memo.codes if memo is not None else _local_encoder()
    codes_a = [encode(strings_a[i]) for i in indexes.tolist()]
    codes_b = [encode(strings_b[i]) for i in indexes.tolist()]
    la, lb = la[indexes], lb[indexes]
    order = np.argsort(la + lb, kind="stable")
    for chunk in _budget_chunks(order, lb, la):
        similarities = _jaro_chunk(
            [codes_a[i] for i in chunk.tolist()],
            [codes_b[i] for i in chunk.tolist()],
            la[chunk],
            lb[chunk],
            prefix_scale,
        )
        out[indexes[chunk]] = similarities
    return out


def _jaro_chunk(
    codes_a: list[np.ndarray],
    codes_b: list[np.ndarray],
    la: np.ndarray,
    lb: np.ndarray,
    prefix_scale: float | None,
) -> np.ndarray:
    size = len(codes_a)
    width_a = int(la.max())
    width_b = int(lb.max())
    a_matrix = _pad_codes(codes_a, width_a, -1)
    b_matrix = _pad_codes(codes_b, width_b, -2)
    window = np.maximum(np.maximum(la, lb) // 2 - 1, 0)[:, None]
    columns = np.arange(width_b, dtype=np.int64)
    matched_a = np.zeros((size, width_a), dtype=bool)
    matched_b = np.zeros((size, width_b), dtype=bool)
    matches = np.zeros(size, dtype=np.int64)
    rows = np.arange(size)
    for i in range(width_a):
        # The scalar window is [max(0, i - w), min(lb, i + w + 1)); the
        # lb clamp only excludes padding columns, which can never win
        # the equality test (pad codes differ by construction), so one
        # |column - i| <= w band mask is enough.
        candidates = (
            (b_matrix == a_matrix[:, i][:, None])
            & ~matched_b
            & (np.abs(columns - i) <= window)
        )
        first = candidates.argmax(axis=1)
        found = candidates[rows, first]
        matched_b[rows[found], first[found]] = True
        matched_a[found, i] = True
        matches += found
    # k-th matched character of each side, in original order (stable
    # argsort floats matched positions to the front without reordering
    # them — the scalar transposition walk).
    order_a = np.argsort(~matched_a, axis=1, kind="stable")
    order_b = np.argsort(~matched_b, axis=1, kind="stable")
    gathered_a = np.take_along_axis(a_matrix, order_a, axis=1)
    gathered_b = np.take_along_axis(b_matrix, order_b, axis=1)
    width = min(width_a, width_b)
    positions = np.arange(width, dtype=np.int64)
    transpositions = (
        (
            (gathered_a[:, :width] != gathered_b[:, :width])
            & (positions < matches[:, None])
        ).sum(axis=1)
        // 2
    )
    similarities = np.zeros(size, dtype=np.float64)
    positive = matches > 0
    m = matches[positive].astype(np.float64)
    t = transpositions[positive].astype(np.float64)
    la_f = la[positive].astype(np.float64)
    lb_f = lb[positive].astype(np.float64)
    # Exactly the scalar expression order: ((m/la + m/lb) + (m-t)/m) / 3.
    similarities[positive] = (m / la_f + m / lb_f + (m - t) / m) / 3.0
    if prefix_scale is not None:
        limit = min(4, width_a, width_b)
        shared = a_matrix[:, :limit] == b_matrix[:, :limit]
        prefix = np.cumprod(shared, axis=1).sum(axis=1).astype(np.float64)
        similarities = similarities + prefix * prefix_scale * (
            1.0 - similarities
        )
    return similarities


# -- set algebra (jaccard family) -----------------------------------------------


def set_intersections(
    sets_a: list[np.ndarray],
    sets_b: list[np.ndarray],
    token_space: int,
) -> np.ndarray:
    """Intersection sizes for aligned pairs of sorted-unique code sets.

    One sort over ``combo_id * token_space + code`` keys: within a
    combo each side holds unique codes, so every adjacent duplicate in
    the sorted key array is exactly one token shared by both sides.
    """
    count = len(sets_a)
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    combo_ids = np.arange(count, dtype=np.int64)
    space = max(token_space, 1)
    keys = np.concatenate(
        [
            np.repeat(combo_ids * space, lens) + codes
            for codes, lens in (
                _gather_sets(sets_a, count),
                _gather_sets(sets_b, count),
            )
        ]
    )
    keys.sort(kind="quicksort")
    duplicates = keys[1:] == keys[:-1]
    return np.bincount(
        keys[1:][duplicates] // space, minlength=count
    ).astype(np.int64)


def _gather_sets(sets: list[np.ndarray], count: int):
    """Concatenate per-combo code sets as ``(codes, lengths)``.

    The combo list references only a handful of distinct array objects
    (one per distinct value tuple, fanned out over combinations), so
    instead of ``np.concatenate`` over thousands of tiny views — whose
    per-array overhead dominates — pool each distinct array once and
    expand per combo with O(total) index arithmetic.
    """
    ids = np.fromiter(map(id, sets), np.int64, count)
    _, first, inverse = np.unique(ids, return_index=True, return_inverse=True)
    distinct = [sets[i] for i in first.tolist()]
    pool_lens = np.fromiter(map(len, distinct), np.int64, len(distinct))
    pool_offsets = np.cumsum(pool_lens) - pool_lens
    pool = (
        np.concatenate(distinct)
        if distinct
        else np.zeros(0, np.int64)
    )
    lens = pool_lens[inverse]
    starts = pool_offsets[inverse]
    total = int(lens.sum())
    positions = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    return pool[np.repeat(starts, lens) + positions], lens


def set_algebra_column(
    columns_a,
    columns_b,
    finish: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    memo: StringKernelMemo | None = None,
    name: str | None = None,
) -> np.ndarray:
    """Batch driver for measures over the two value sets themselves
    (jaccard, dice, overlap): deduplicate rows per distinct value-tuple
    combination, encode each distinct tuple once into the integer
    token-code space, compute all intersection sizes with one sorted
    pass, and let ``finish(intersections, sizes_a, sizes_b)`` apply the
    measure's arithmetic (which must keep the scalar operation order
    for bit-parity).
    """
    if len(columns_a) != len(columns_b):
        raise ValueError(
            f"column length mismatch: {len(columns_a)} vs {len(columns_b)}"
        )
    n = len(columns_a)
    out = np.full(n, INFINITE_DISTANCE, dtype=np.float64)
    if n == 0:
        return out
    # Row dedup, vectorized: unique each side's tuple identities (the
    # engine hands out one tuple object per unique entity), then unique
    # the combination of the two small inverse indexes — cheaper than
    # one np.unique over (id, id) rows.
    ids_a = np.fromiter(map(id, columns_a), np.int64, n)
    ids_b = np.fromiter(map(id, columns_b), np.int64, n)
    lens_a = np.fromiter(map(len, columns_a), np.int64, n)
    lens_b = np.fromiter(map(len, columns_b), np.int64, n)
    rows = np.flatnonzero((lens_a > 0) & (lens_b > 0))
    if rows.size == 0:
        return out
    _, first_a, inv_a = np.unique(
        ids_a[rows], return_index=True, return_inverse=True
    )
    _, first_b, inv_b = np.unique(
        ids_b[rows], return_index=True, return_inverse=True
    )
    local = memo if memo is not None else StringKernelMemo()
    sets_a, _ = local.token_sets([columns_a[i] for i in rows[first_a].tolist()])
    sets_b, token_space = local.token_sets(
        [columns_b[i] for i in rows[first_b].tolist()]
    )
    combo_key = inv_a * np.int64(first_b.size) + inv_b
    _, first_combo, row_combo = np.unique(
        combo_key, return_index=True, return_inverse=True
    )
    select_a = inv_a[first_combo]
    select_b = inv_b[first_combo]
    intersections = _distinct_intersections(
        sets_a, sets_b, select_a, select_b, token_space
    )
    sizes_a = np.fromiter(map(len, sets_a), np.int64, len(sets_a))[select_a]
    sizes_b = np.fromiter(map(len, sets_b), np.int64, len(sets_b))[select_b]
    distances = finish(intersections, sizes_a, sizes_b)
    out[rows] = distances[row_combo]
    if memo is not None and name is not None:
        memo.record_routing(name, batch=rows.size)
    return out


#: Widest bitset (in 64-bit words) worth materialising per combination;
#: beyond it (token spaces over 4096 codes) the sorted-key path wins.
_BITSET_WORDS = 64


def _distinct_intersections(
    sets_a: list[np.ndarray],
    sets_b: list[np.ndarray],
    select_a: np.ndarray,
    select_b: np.ndarray,
    token_space: int,
) -> np.ndarray:
    """Intersection sizes for ``(select_a[i], select_b[i])`` pairs of
    distinct code sets.

    Small token spaces pack each distinct set into a fixed-width bitset
    once and count shared tokens with ``bitwise_and`` +
    ``bitwise_count`` per combination — O(words) per pair with a tiny
    constant. Large spaces fall back to the sorted-key pass of
    :func:`set_intersections`. Both produce exact integer counts, so
    the choice cannot affect parity.
    """
    words = (max(token_space, 1) + 63) // 64
    if words > _BITSET_WORDS:
        return set_intersections(
            [sets_a[k] for k in select_a.tolist()],
            [sets_b[k] for k in select_b.tolist()],
            token_space,
        )
    masks_a = _bitset_pack(sets_a, words)
    masks_b = _bitset_pack(sets_b, words)
    shared = masks_a[select_a] & masks_b[select_b]
    return np.bitwise_count(shared).sum(axis=1, dtype=np.int64)


def _bitset_pack(sets: list[np.ndarray], words: int) -> np.ndarray:
    """Each sorted-unique code set as one row of a packed bit matrix."""
    masks = np.zeros((len(sets), words), dtype=np.uint64)
    lens = np.fromiter(map(len, sets), np.int64, len(sets))
    codes = (
        np.concatenate(sets)
        if sets
        else np.zeros(0, np.int64)
    )
    owner = np.repeat(np.arange(len(sets), dtype=np.int64), lens)
    np.bitwise_or.at(
        masks,
        (owner, codes >> 6),
        np.uint64(1) << (codes & 63).astype(np.uint64),
    )
    return masks


# -- shared pairwise driver -----------------------------------------------------


def batch_pair_column(
    columns_a,
    columns_b,
    pair_kernel: Callable[[list[str], list[str]], np.ndarray],
    evaluate,
    memo: StringKernelMemo | None = None,
    name: str | None = None,
) -> np.ndarray:
    """Batch driver for measures lifting a pairwise string distance via
    ``min_over_pairs``: deduplicate rows per distinct value-set
    combination, run every singleton-singleton combination's string
    pair through one ``pair_kernel`` call (vectorized across the whole
    column), and replay multi-valued combinations through the scalar
    oracle ``evaluate`` — the per-pair fallback, counted as such in the
    routing statistics.
    """
    if len(columns_a) != len(columns_b):
        raise ValueError(
            f"column length mismatch: {len(columns_a)} vs {len(columns_b)}"
        )
    n = len(columns_a)
    out = np.full(n, INFINITE_DISTANCE, dtype=np.float64)
    if n == 0:
        return out
    combo_of: dict[tuple[int, int], int] = {}
    combos_a: list = []
    combos_b: list = []
    row_combo = np.full(n, -1, dtype=np.int64)
    for i, (values_a, values_b) in enumerate(zip(columns_a, columns_b)):
        if not values_a or not values_b:
            continue
        key = (id(values_a), id(values_b))
        slot = combo_of.get(key)
        if slot is None:
            slot = len(combos_a)
            combo_of[key] = slot
            combos_a.append(values_a)
            combos_b.append(values_b)
        row_combo[i] = slot
    combo_count = len(combos_a)
    if combo_count == 0:
        return out
    values = np.empty(combo_count, dtype=np.float64)
    is_batch = np.zeros(combo_count, dtype=bool)
    pair_of: dict[tuple[str, str], int] = {}
    pairs_a: list[str] = []
    pairs_b: list[str] = []
    single_slots: list[int] = []
    single_pairs: list[int] = []
    multi_slots: list[int] = []
    for slot in range(combo_count):
        values_a, values_b = combos_a[slot], combos_b[slot]
        if len(values_a) == 1 and len(values_b) == 1:
            is_batch[slot] = True
            pair_key = (values_a[0], values_b[0])
            pair = pair_of.get(pair_key)
            if pair is None:
                pair = len(pairs_a)
                pair_of[pair_key] = pair
                pairs_a.append(values_a[0])
                pairs_b.append(values_b[0])
            single_slots.append(slot)
            single_pairs.append(pair)
        else:
            multi_slots.append(slot)
    if pairs_a:
        distances = pair_kernel(pairs_a, pairs_b)
        values[single_slots] = distances[single_pairs]
    for slot in multi_slots:
        values[slot] = evaluate(combos_a[slot], combos_b[slot])
    valid = row_combo >= 0
    out[valid] = values[row_combo[valid]]
    if memo is not None and name is not None:
        routed = row_combo[valid]
        batch_rows = int(is_batch[routed].sum())
        memo.record_routing(
            name, batch=batch_rows, fallback=int(routed.size - batch_rows)
        )
    return out
