"""Jaccard distance between value sets.

The Jaccard coefficient treats the two value sets themselves as token
sets: ``|A intersect B| / |A union B|``. The distance is one minus the
coefficient, so it already lives in [0, 1] and needs no cross-product
lifting. This is the natural companion of the ``tokenize``
transformation: tokenising a label first and comparing with Jaccard
yields order-insensitive matching, one of the paper's motivating
examples (Section 3).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    fallback_column,
)
from repro.distances.strings import (
    StringKernelMemo,
    count_nonempty,
    set_algebra_column,
    string_backend,
)


def jaccard_distance(values_a: Iterable[str], values_b: Iterable[str]) -> float:
    """1 - |A n B| / |A u B| over the two value sets."""
    set_a = set(values_a)
    set_b = set(values_b)
    if not set_a or not set_b:
        return INFINITE_DISTANCE
    intersection = len(set_a & set_b)
    union = len(set_a | set_b)
    return 1.0 - intersection / union


class JaccardDistance(DistanceMeasure):
    """Jaccard set distance in [0, 1]."""

    name = "jaccard"
    threshold_range = (0.1, 1.0)
    batch_capable = True
    memo_capable = True

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return jaccard_distance(values_a, values_b)

    def evaluate_column(
        self,
        columns_a: ValueColumn,
        columns_b: ValueColumn,
        memo: StringKernelMemo | None = None,
    ) -> np.ndarray:
        backend = string_backend()
        if backend == "python":
            if memo is not None:
                memo.record_routing(
                    self.name, fallback=count_nonempty(columns_a, columns_b)
                )
            return fallback_column(self.evaluate, columns_a, columns_b)
        return set_algebra_column(
            columns_a, columns_b, _jaccard_finish, memo=memo, name=self.name
        )


def _jaccard_finish(
    intersections: np.ndarray, sizes_a: np.ndarray, sizes_b: np.ndarray
) -> np.ndarray:
    # Scalar expression order: 1.0 - (intersection / union), int / int.
    unions = sizes_a + sizes_b - intersections
    return 1.0 - intersections / unions
