"""Registry mapping measure names to :class:`DistanceMeasure` instances.

The GP references measures by name (rules stay JSON-serialisable);
evaluation resolves names through a registry. ``default_registry()``
contains every measure from Table 2 plus the baseline extras. Users can
register their own measures, which then become available to learning
and execution alike (see ``examples/custom_operators.py``).

The string measures in the registry route their batch kernels through
the backend selected by ``REPRO_ENGINE_STRING_BACKEND`` (numpy by
default, optionally the native ``rapidfuzz`` package, or the pure
Python oracle) — see :mod:`repro.distances.strings`. Every backend is
bit-identical; the variable only moves wall-clock.
"""

from __future__ import annotations

from typing import Iterator

from repro.distances.base import DistanceMeasure
from repro.distances.dates import DateDistance
from repro.distances.equality import EqualityDistance
from repro.distances.geographic import GeographicDistance
from repro.distances.jaccard import JaccardDistance
from repro.distances.jaro import JaroDistance, JaroWinklerDistance
from repro.distances.levenshtein import (
    LevenshteinDistance,
    NormalizedLevenshteinDistance,
)
from repro.distances.numeric import NumericDistance
from repro.distances.qgrams import QGramsDistance, SoftJaccardDistance
from repro.distances.tokenbased import (
    DiceDistance,
    MongeElkanDistance,
    OverlapDistance,
    RelativeNumericDistance,
)


class DistanceRegistry:
    """Name -> measure lookup with registration support."""

    def __init__(self) -> None:
        self._measures: dict[str, DistanceMeasure] = {}

    def register(self, measure: DistanceMeasure) -> None:
        """Add a measure under its ``name``; re-registering overwrites."""
        if not measure.name or measure.name == "abstract":
            raise ValueError("distance measure must define a concrete name")
        self._measures[measure.name] = measure

    def get(self, name: str) -> DistanceMeasure:
        try:
            return self._measures[name]
        except KeyError:
            known = ", ".join(sorted(self._measures))
            raise KeyError(f"unknown distance measure {name!r}; known: {known}")

    def __contains__(self, name: str) -> bool:
        return name in self._measures

    def __iter__(self) -> Iterator[str]:
        return iter(self._measures)

    def names(self) -> list[str]:
        return sorted(self._measures)


_DEFAULT: DistanceRegistry | None = None


def default_registry() -> DistanceRegistry:
    """The process-wide registry with all built-in measures."""
    global _DEFAULT
    if _DEFAULT is None:
        registry = DistanceRegistry()
        for measure in (
            LevenshteinDistance(),
            NormalizedLevenshteinDistance(),
            JaccardDistance(),
            NumericDistance(),
            GeographicDistance(),
            DateDistance(),
            JaroDistance(),
            JaroWinklerDistance(),
            EqualityDistance(),
            DiceDistance(),
            OverlapDistance(),
            MongeElkanDistance(),
            RelativeNumericDistance(),
            QGramsDistance(),
            SoftJaccardDistance(),
        ):
            registry.register(measure)
        _DEFAULT = registry
    return _DEFAULT


def get_measure(name: str) -> DistanceMeasure:
    """Convenience lookup in the default registry."""
    return default_registry().get(name)


def measure_names() -> list[str]:
    """Names of all built-in measures."""
    return default_registry().names()
