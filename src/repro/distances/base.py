"""Common infrastructure for distance measures.

A :class:`DistanceMeasure` maps two value sets to a non-negative float
distance. ``INFINITE_DISTANCE`` is returned whenever a distance is
undefined (empty inputs, unparseable values); any comparison operator
then yields similarity 0 because the distance exceeds every threshold.

Measures additionally expose a **batch API**: :meth:`evaluate_column`
takes two aligned columns of value sets (one entry per candidate pair)
and returns a float64 distance vector. Batch-capable measures override
it with vectorized kernels; everything else inherits a generic fallback
that deduplicates per distinct value-set combination before calling the
scalar :meth:`evaluate`. The contract is strict: for every row the
batch result must be *bit-identical* to the scalar path, with empty
value sets on either side yielding ``INFINITE_DISTANCE``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

#: Sentinel distance for undefined comparisons. Large but finite so that
#: arithmetic on it stays well-behaved (no NaNs in score vectors).
INFINITE_DISTANCE = 1.0e12

#: A column of value sets, one entry per candidate pair. Entries are the
#: transformed value tuples the engine materialises per unique entity,
#: so the same tuple object typically recurs across many rows.
ValueColumn = Sequence[Sequence[str]]


class DistanceMeasure(ABC):
    """A distance function between two value sets.

    Subclasses define :meth:`evaluate` and advertise a sensible range of
    distance thresholds via :attr:`threshold_range`, which the GP's
    random rule generator samples from (e.g. character edits for
    Levenshtein, metres for geographic distance). Measures that also
    override :meth:`evaluate_column` with a vectorized kernel set
    :attr:`batch_capable` so callers and tests can tell real kernels
    from the generic fallback.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Inclusive (low, high) range for sampling random thresholds.
    threshold_range: tuple[float, float] = (0.0, 1.0)

    #: True when :meth:`evaluate_column` is a vectorized batch kernel
    #: rather than the inherited per-pair fallback.
    batch_capable: bool = False

    #: True when :meth:`evaluate_column` additionally accepts a
    #: ``memo`` keyword (a :class:`repro.distances.strings.StringKernelMemo`)
    #: carrying session-scoped encode caches and kernel-routing
    #: counters. Kept as a separate flag so user-defined measures with
    #: the plain two-argument signature keep working unchanged.
    memo_capable: bool = False

    @abstractmethod
    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        """Return the distance between two value sets (>= 0)."""

    def evaluate_column(
        self, columns_a: ValueColumn, columns_b: ValueColumn
    ) -> np.ndarray:
        """Distances for aligned columns of value sets, one per pair.

        Rows where either side is empty get ``INFINITE_DISTANCE``. The
        generic implementation memoises per distinct (value set, value
        set) combination — entity value tuples recur across pairs, so
        even the fallback avoids re-evaluating repeated combinations —
        and is bit-identical to calling :meth:`evaluate` per row.
        """
        return fallback_column(self.evaluate, columns_a, columns_b)

    def cache_token(self) -> str:
        """Stable identity of this measure for *persistent* cache keys.

        The registry name alone is not enough across processes: two
        runs sharing a cache directory could resolve the same name to
        different implementations or configurations (a custom
        ``levenshtein``, ``QGramsDistance(q=3)`` vs the default q=2).
        The token therefore records the implementation class and its
        scalar configuration attributes; memo tables and other
        non-scalar state are excluded — they never change results.
        """
        params = ",".join(
            f"{name}={value!r}"
            for name, value in sorted(vars(self).items())
            if value is None or isinstance(value, (bool, int, float, str))
        )
        return f"{type(self).__module__}.{type(self).__qualname__}({params})"

    def __call__(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return self.evaluate(values_a, values_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def fallback_column(
    evaluate: Callable[[Sequence[str], Sequence[str]], float],
    columns_a: ValueColumn,
    columns_b: ValueColumn,
) -> np.ndarray:
    """Per-pair batch fallback, deduplicated per value-set combination.

    Keys the memo by the identity of the value tuples (the engine hands
    out one tuple object per unique entity, so identity collapses the
    cross product to unique combinations without hashing string
    contents). ``evaluate`` must be pure, which every distance measure
    is by contract.
    """
    if len(columns_a) != len(columns_b):
        raise ValueError(
            f"column length mismatch: {len(columns_a)} vs {len(columns_b)}"
        )
    out = np.full(len(columns_a), INFINITE_DISTANCE, dtype=np.float64)
    memo: dict[tuple[int, int], float] = {}
    for i, (values_a, values_b) in enumerate(zip(columns_a, columns_b)):
        if not values_a or not values_b:
            continue
        key = (id(values_a), id(values_b))
        distance = memo.get(key)
        if distance is None:
            distance = evaluate(values_a, values_b)
            memo[key] = distance
        out[i] = distance
    return out


def parse_cached(
    cache: dict, values: Sequence[str], parser: Callable[[str], object]
) -> tuple:
    """Parse a value set through a per-column cache.

    Value tuples repeat across rows (one per unique entity), so each
    distinct set is parsed exactly once per batch call. Unparseable
    values stay as ``None`` — they still occupy a slot so the budgeted
    min-over-pairs loop visits them exactly like the scalar path does.
    """
    key = id(values)
    parsed = cache.get(key)
    if parsed is None:
        # The tuple is kept alive in the cache value so the id key
        # cannot be recycled for the duration of the batch call.
        parsed = (values, tuple(parser(v) for v in values))
        cache[key] = parsed
    return parsed[1]


def absdiff_column(
    columns_a: ValueColumn,
    columns_b: ValueColumn,
    parser: Callable[[str], float | None],
) -> np.ndarray:
    """Batch kernel for measures whose pair distance is ``abs(a - b)``
    over parsed scalars (numeric values, date ordinals).

    Parsing is memoised per distinct value set. Rows where both sides
    are parseable singletons — the overwhelmingly common case — are
    computed as one vectorized ``|a - b|`` numpy expression; rows with
    multi-valued or unparseable entries replay the scalar measure's
    budgeted min-over-pairs loop on the pre-parsed scalars, so every
    row is bit-identical to the per-pair path.
    """
    if len(columns_a) != len(columns_b):
        raise ValueError(
            f"column length mismatch: {len(columns_a)} vs {len(columns_b)}"
        )
    n = len(columns_a)
    out = np.full(n, INFINITE_DISTANCE, dtype=np.float64)
    # Scalar-or-None per value set, memoised by tuple identity (the
    # engine hands out one tuple object per unique entity). A scalar
    # means "parseable singleton" — the vectorized fast path; None
    # means the row needs the budgeted min-over-pairs loop or is a
    # failed singleton parse (NaN below maps those to the sentinel,
    # matching the scalar result).
    nan = float("nan")
    scalars: dict[int, float | None] = {}
    parsed_sets: dict = {}
    fast_a: list[float] = [nan] * n
    fast_b: list[float] = [nan] * n
    slow_rows: list[int] = []
    scalars_get = scalars.get
    for i, (values_a, values_b) in enumerate(zip(columns_a, columns_b)):
        if not values_a or not values_b:
            continue
        scalar_a = scalars_get(id(values_a), _UNSEEN)
        if scalar_a is _UNSEEN:
            scalar_a = _intern_scalar(values_a, parser, scalars, parsed_sets)
        scalar_b = scalars_get(id(values_b), _UNSEEN)
        if scalar_b is _UNSEEN:
            scalar_b = _intern_scalar(values_b, parser, scalars, parsed_sets)
        if scalar_a is not None and scalar_b is not None:
            fast_a[i] = scalar_a
            fast_b[i] = scalar_b
        elif len(values_a) > 1 or len(values_b) > 1:
            slow_rows.append(i)
    difference = np.abs(
        np.asarray(fast_a, dtype=np.float64) - np.asarray(fast_b, dtype=np.float64)
    )
    # min_over_pairs never returns more than the INFINITE_DISTANCE
    # sentinel it starts from (a candidate must be strictly smaller to
    # be taken), so the vectorized path clamps to stay bit-identical on
    # huge differences (13-digit values, overflow-to-inf parses).
    difference = np.minimum(difference, INFINITE_DISTANCE)
    valid = ~np.isnan(difference)
    out[valid] = difference[valid]
    for i in slow_rows:
        out[i] = min_over_pairs(
            parse_cached(parsed_sets, columns_a[i], parser),
            parse_cached(parsed_sets, columns_b[i], parser),
            _absdiff_pair,
        )
    return out


#: Sentinel distinguishing "not interned yet" from an interned None.
_UNSEEN = object()


def _intern_scalar(
    values: Sequence[str],
    parser: Callable[[str], float | None],
    scalars: dict,
    parsed_sets: dict,
) -> float | None:
    """Intern a value set for :func:`absdiff_column`: its parsed scalar
    when it is a parseable singleton, else None (multi-valued sets also
    pre-parse into ``parsed_sets`` for the slow path)."""
    scalar: float | None = None
    if len(values) == 1:
        scalar = parser(values[0])
    else:
        parse_cached(parsed_sets, values, parser)
    # id keys are stable here: the interned tuples are kept alive by
    # the caller's column lists for the whole batch call.
    scalars[id(values)] = scalar
    return scalar


def _absdiff_pair(a: float | None, b: float | None) -> float:
    if a is None or b is None:
        return INFINITE_DISTANCE
    return abs(a - b)


def min_over_pairs(
    values_a: Sequence[str],
    values_b: Sequence[str],
    pair_distance: Callable[[str, str], float],
    max_pairs: int = 256,
) -> float:
    """Lift a pairwise distance to value sets via the minimum.

    The minimum over the cross product is the Silk convention: two
    entities are as close as their closest pair of values. ``max_pairs``
    bounds the work on pathologically multi-valued properties; values
    beyond the cap are ignored deterministically (first values win).
    """
    if not values_a or not values_b:
        return INFINITE_DISTANCE
    best = INFINITE_DISTANCE
    budget = max_pairs
    for va in values_a:
        for vb in values_b:
            d = pair_distance(va, vb)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
            budget -= 1
            if budget <= 0:
                return best
    return best
