"""Common infrastructure for distance measures.

A :class:`DistanceMeasure` maps two value sets to a non-negative float
distance. ``INFINITE_DISTANCE`` is returned whenever a distance is
undefined (empty inputs, unparseable values); any comparison operator
then yields similarity 0 because the distance exceeds every threshold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

#: Sentinel distance for undefined comparisons. Large but finite so that
#: arithmetic on it stays well-behaved (no NaNs in score vectors).
INFINITE_DISTANCE = 1.0e12


class DistanceMeasure(ABC):
    """A distance function between two value sets.

    Subclasses define :meth:`evaluate` and advertise a sensible range of
    distance thresholds via :attr:`threshold_range`, which the GP's
    random rule generator samples from (e.g. character edits for
    Levenshtein, metres for geographic distance).
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Inclusive (low, high) range for sampling random thresholds.
    threshold_range: tuple[float, float] = (0.0, 1.0)

    @abstractmethod
    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        """Return the distance between two value sets (>= 0)."""

    def __call__(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return self.evaluate(values_a, values_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def min_over_pairs(
    values_a: Sequence[str],
    values_b: Sequence[str],
    pair_distance: Callable[[str, str], float],
    max_pairs: int = 256,
) -> float:
    """Lift a pairwise distance to value sets via the minimum.

    The minimum over the cross product is the Silk convention: two
    entities are as close as their closest pair of values. ``max_pairs``
    bounds the work on pathologically multi-valued properties; values
    beyond the cap are ignored deterministically (first values win).
    """
    if not values_a or not values_b:
        return INFINITE_DISTANCE
    best = INFINITE_DISTANCE
    budget = max_pairs
    for va in values_a:
        for vb in values_b:
            d = pair_distance(va, vb)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
            budget -= 1
            if budget <= 0:
                return best
    return best
