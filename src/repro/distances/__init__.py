"""Distance measures used by comparison operators.

Each measure implements the paper's signature ``fd : Sigma x Sigma -> R``
(Definition 7): it receives the *value sets* produced by the two value
operators of a comparison and returns a non-negative distance. Character
and token measures lift their pairwise definition to value sets by taking
the minimum distance over the cross product (the convention used by the
Silk framework, in which GenLink was implemented).

The measures listed in Table 2 of the paper (levenshtein, jaccard,
numeric, geographic, date) are all provided, plus Jaro / Jaro-Winkler
which the Carvalho et al. baseline uses.
"""

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    min_over_pairs,
)
from repro.distances.levenshtein import (
    LevenshteinDistance,
    NormalizedLevenshteinDistance,
    levenshtein,
    normalized_levenshtein,
)
from repro.distances.jaccard import JaccardDistance, jaccard_distance
from repro.distances.numeric import NumericDistance, parse_number
from repro.distances.geographic import (
    GeographicDistance,
    haversine_metres,
    parse_point,
)
from repro.distances.dates import DateDistance, parse_date
from repro.distances.jaro import (
    JaroDistance,
    JaroWinklerDistance,
    jaro_similarity,
    jaro_winkler_similarity,
)
from repro.distances.equality import EqualityDistance
from repro.distances.tokenbased import (
    DiceDistance,
    MongeElkanDistance,
    OverlapDistance,
    RelativeNumericDistance,
)
from repro.distances.registry import (
    DistanceRegistry,
    default_registry,
    get_measure,
    measure_names,
)
from repro.distances.strings import (
    BACKEND_ENV,
    StringKernelMemo,
    string_backend,
)

__all__ = [
    "DistanceMeasure",
    "INFINITE_DISTANCE",
    "min_over_pairs",
    "LevenshteinDistance",
    "NormalizedLevenshteinDistance",
    "levenshtein",
    "normalized_levenshtein",
    "JaccardDistance",
    "jaccard_distance",
    "NumericDistance",
    "parse_number",
    "GeographicDistance",
    "haversine_metres",
    "parse_point",
    "DateDistance",
    "parse_date",
    "JaroDistance",
    "JaroWinklerDistance",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "EqualityDistance",
    "DiceDistance",
    "MongeElkanDistance",
    "OverlapDistance",
    "RelativeNumericDistance",
    "DistanceRegistry",
    "default_registry",
    "get_measure",
    "measure_names",
    "BACKEND_ENV",
    "StringKernelMemo",
    "string_backend",
]
