"""Geographic distance in metres (Table 2: ``geographic``).

Points are parsed from the formats that occur in the wild on the Linked
Data sources the paper evaluates on:

* WKT: ``POINT(13.37 52.52)``      (lon lat)
* comma pair: ``52.52,13.37``      (lat, lon)
* space pair: ``52.52 13.37``      (lat lon)

Distances use the haversine great-circle formula on a spherical earth,
which is accurate to ~0.5% — far below any threshold the GP learns.
"""

from __future__ import annotations

import math
import re
from typing import Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    fallback_column,
    min_over_pairs,
    parse_cached,
)

EARTH_RADIUS_METRES = 6_371_000.0

_WKT_RE = re.compile(
    r"POINT\s*\(\s*([-+]?\d+(?:\.\d+)?)\s+([-+]?\d+(?:\.\d+)?)\s*\)", re.IGNORECASE
)
_PAIR_RE = re.compile(
    r"^\s*([-+]?\d+(?:\.\d+)?)\s*[, ]\s*([-+]?\d+(?:\.\d+)?)\s*$"
)


def parse_point(value: str) -> tuple[float, float] | None:
    """Parse a value into (lat, lon) degrees, or None."""
    wkt = _WKT_RE.search(value)
    if wkt is not None:
        lon, lat = float(wkt.group(1)), float(wkt.group(2))
    else:
        pair = _PAIR_RE.match(value)
        if pair is None:
            return None
        lat, lon = float(pair.group(1)), float(pair.group(2))
    if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
        return None
    return lat, lon


def haversine_metres(
    lat_a: float, lon_a: float, lat_b: float, lon_b: float
) -> float:
    """Great-circle distance between two (lat, lon) points in metres."""
    phi_a = math.radians(lat_a)
    phi_b = math.radians(lat_b)
    d_phi = math.radians(lat_b - lat_a)
    d_lambda = math.radians(lon_b - lon_a)
    h = (
        math.sin(d_phi / 2.0) ** 2
        + math.cos(phi_a) * math.cos(phi_b) * math.sin(d_lambda / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_METRES * math.asin(min(1.0, math.sqrt(h)))


def _pair_distance(a: str, b: str) -> float:
    pa = parse_point(a)
    pb = parse_point(b)
    if pa is None or pb is None:
        return INFINITE_DISTANCE
    return haversine_metres(pa[0], pa[1], pb[0], pb[1])


def _parsed_pair_distance(
    point_a: tuple[float, float] | None, point_b: tuple[float, float] | None
) -> float:
    if point_a is None or point_b is None:
        return INFINITE_DISTANCE
    return haversine_metres(point_a[0], point_a[1], point_b[0], point_b[1])


class GeographicDistance(DistanceMeasure):
    """Great-circle distance in metres between coordinate values."""

    name = "geographic"
    threshold_range = (100.0, 50_000.0)
    batch_capable = True

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return min_over_pairs(values_a, values_b, _pair_distance)

    def evaluate_column(
        self, columns_a: ValueColumn, columns_b: ValueColumn
    ) -> np.ndarray:
        """Batch haversine over memoised coordinate parsing.

        Each distinct value set is regex-parsed once per batch, and
        :func:`repro.distances.base.fallback_column` memoises the
        min-over-pairs haversine per distinct set combination. The
        trigonometry stays on scalar ``math`` functions: numpy's SIMD
        ``sin``/``cos`` loops may differ from libm in the last ulp, and
        the engine guarantees bit-identical scores between the batch
        and per-pair paths.
        """
        cache: dict = {}

        def evaluate_parsed(values_a, values_b):
            return min_over_pairs(
                parse_cached(cache, values_a, parse_point),
                parse_cached(cache, values_b, parse_point),
                _parsed_pair_distance,
            )

        return fallback_column(evaluate_parsed, columns_a, columns_b)
