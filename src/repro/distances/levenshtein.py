"""Levenshtein (edit) distance with a banded dynamic program.

Comparison operators carry an absolute edit-distance threshold, so the
DP can run inside a diagonal band of width ``2*bound + 1`` and abort as
soon as every cell in a row exceeds the bound. This turns the usual
O(n*m) cost into O(n*bound), which is what makes pure-Python GP fitness
evaluation feasible at paper scale.
"""

from __future__ import annotations

from typing import Sequence

from repro.distances.base import DistanceMeasure, INFINITE_DISTANCE, min_over_pairs


def levenshtein(a: str, b: str, bound: int | None = None) -> float:
    """Edit distance between two strings.

    When ``bound`` is given and the true distance exceeds it, any value
    strictly greater than ``bound`` may be returned (the caller only
    needs to know the distance is out of range).
    """
    if a == b:
        return 0.0
    la, lb = len(a), len(b)
    if la == 0:
        return float(lb)
    if lb == 0:
        return float(la)
    if bound is not None and abs(la - lb) > bound:
        return float(bound + 1)
    # Keep the shorter string as the row to minimise memory.
    if la > lb:
        a, b = b, a
        la, lb = lb, la
    previous = list(range(la + 1))
    current = [0] * (la + 1)
    for j in range(1, lb + 1):
        current[0] = j
        bj = b[j - 1]
        row_min = current[0]
        for i in range(1, la + 1):
            cost = 0 if a[i - 1] == bj else 1
            value = min(
                previous[i] + 1,      # deletion
                current[i - 1] + 1,   # insertion
                previous[i - 1] + cost,  # substitution
            )
            current[i] = value
            if value < row_min:
                row_min = value
        if bound is not None and row_min > bound:
            return float(bound + 1)
        previous, current = current, previous
    return float(previous[la])


def normalized_levenshtein(a: str, b: str) -> float:
    """Edit distance scaled to [0, 1] by the longer string length."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest


class LevenshteinDistance(DistanceMeasure):
    """Minimum edit distance over the cross product of two value sets.

    ``max_bound`` limits how far the banded DP runs; distances beyond it
    are reported as ``max_bound + 1`` which is indistinguishable from
    "too far" for every threshold the GP can learn (thresholds are
    sampled from :attr:`threshold_range`).
    """

    name = "levenshtein"
    threshold_range = (0.0, 10.0)

    def __init__(self, max_bound: int = 11):
        if max_bound < 1:
            raise ValueError("max_bound must be >= 1")
        self._max_bound = max_bound

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        bound = self._max_bound
        return min_over_pairs(
            values_a, values_b, lambda x, y: levenshtein(x, y, bound=bound)
        )


class NormalizedLevenshteinDistance(DistanceMeasure):
    """Length-normalised edit distance in [0, 1] (used by baselines)."""

    name = "normalizedLevenshtein"
    threshold_range = (0.0, 1.0)

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        if not values_a or not values_b:
            return INFINITE_DISTANCE
        return min_over_pairs(values_a, values_b, normalized_levenshtein)
