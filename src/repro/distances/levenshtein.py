"""Levenshtein (edit) distance with a banded dynamic program.

Comparison operators carry an absolute edit-distance threshold, so the
DP can run inside a diagonal band of width ``2*bound + 1`` and abort as
soon as every cell in a row exceeds the bound. This turns the usual
O(n*m) cost into O(n*bound), which is what makes pure-Python GP fitness
evaluation feasible at paper scale.

Both measures also expose vectorized batch kernels
(:mod:`repro.distances.strings`): the numpy backend runs the clamped DP
as row sweeps across the whole pair column at once, and the optional
``rapidfuzz`` backend maps the clamp contract onto ``score_cutoff``.
The scalar functions here stay the bit-identical parity oracle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    fallback_column,
    min_over_pairs,
)
from repro.distances.strings import (
    StringKernelMemo,
    batch_pair_column,
    count_nonempty,
    levenshtein_pairs,
    rapidfuzz_levenshtein_pairs,
    string_backend,
)


def levenshtein(a: str, b: str, bound: int | None = None) -> float:
    """Edit distance between two strings.

    When ``bound`` is given the result is exactly
    ``min(distance, bound + 1)``: every out-of-range pair reports
    ``bound + 1``, regardless of which shortcut detected it. The callers
    only need "out of range", but pinning the clamped value is what lets
    every batch backend (numpy row-DP, rapidfuzz ``score_cutoff``)
    produce bit-identical columns.
    """
    if a == b:
        return 0.0
    la, lb = len(a), len(b)
    if bound is not None and abs(la - lb) > bound:
        return float(bound + 1)
    if la == 0:
        return float(lb)
    if lb == 0:
        return float(la)
    # Keep the shorter string as the row to minimise memory.
    if la > lb:
        a, b = b, a
        la, lb = lb, la
    previous = list(range(la + 1))
    current = [0] * (la + 1)
    for j in range(1, lb + 1):
        current[0] = j
        bj = b[j - 1]
        row_min = current[0]
        for i in range(1, la + 1):
            cost = 0 if a[i - 1] == bj else 1
            value = min(
                previous[i] + 1,      # deletion
                current[i - 1] + 1,   # insertion
                previous[i - 1] + cost,  # substitution
            )
            current[i] = value
            if value < row_min:
                row_min = value
        if bound is not None and row_min > bound:
            return float(bound + 1)
        previous, current = current, previous
    distance = previous[la]
    if bound is not None and distance > bound:
        return float(bound + 1)
    return float(distance)


def normalized_levenshtein(a: str, b: str) -> float:
    """Edit distance scaled to [0, 1] by the longer string length."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest


class LevenshteinDistance(DistanceMeasure):
    """Minimum edit distance over the cross product of two value sets.

    ``max_bound`` limits how far the banded DP runs; distances beyond it
    are reported as ``max_bound + 1`` which is indistinguishable from
    "too far" for every threshold the GP can learn (thresholds are
    sampled from :attr:`threshold_range`).
    """

    name = "levenshtein"
    threshold_range = (0.0, 10.0)
    batch_capable = True
    memo_capable = True

    def __init__(self, max_bound: int = 11):
        if max_bound < 1:
            raise ValueError("max_bound must be >= 1")
        self._max_bound = max_bound
        # Contract revision, serialised into cache_token(): revision 2
        # pins out-of-range distances to exactly bound + 1, so columns
        # persisted under the older "any value > bound" contract miss
        # cleanly instead of mixing both conventions.
        self._contract = 2

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        bound = self._max_bound
        return min_over_pairs(
            values_a, values_b, lambda x, y: levenshtein(x, y, bound=bound)
        )

    def evaluate_column(
        self,
        columns_a: ValueColumn,
        columns_b: ValueColumn,
        memo: StringKernelMemo | None = None,
    ) -> np.ndarray:
        backend = string_backend()
        if backend == "python":
            if memo is not None:
                memo.record_routing(
                    self.name, fallback=count_nonempty(columns_a, columns_b)
                )
            return fallback_column(self.evaluate, columns_a, columns_b)
        bound = self._max_bound
        if backend == "rapidfuzz":
            def kernel(strings_a, strings_b):
                return rapidfuzz_levenshtein_pairs(strings_a, strings_b, bound)
        else:
            def kernel(strings_a, strings_b):
                return levenshtein_pairs(strings_a, strings_b, bound, memo=memo)
        return batch_pair_column(
            columns_a, columns_b, kernel, self.evaluate, memo=memo, name=self.name
        )


class NormalizedLevenshteinDistance(DistanceMeasure):
    """Length-normalised edit distance in [0, 1] (used by baselines)."""

    name = "normalizedLevenshtein"
    threshold_range = (0.0, 1.0)
    batch_capable = True
    memo_capable = True

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        if not values_a or not values_b:
            return INFINITE_DISTANCE
        return min_over_pairs(values_a, values_b, normalized_levenshtein)

    def evaluate_column(
        self,
        columns_a: ValueColumn,
        columns_b: ValueColumn,
        memo: StringKernelMemo | None = None,
    ) -> np.ndarray:
        backend = string_backend()
        if backend == "python":
            if memo is not None:
                memo.record_routing(
                    self.name, fallback=count_nonempty(columns_a, columns_b)
                )
            return fallback_column(self.evaluate, columns_a, columns_b)

        def kernel(strings_a, strings_b):
            if backend == "rapidfuzz":
                distances = rapidfuzz_levenshtein_pairs(strings_a, strings_b)
            else:
                distances = levenshtein_pairs(strings_a, strings_b, memo=memo)
            count = len(strings_a)
            longest = np.maximum(
                np.fromiter(map(len, strings_a), np.int64, count),
                np.fromiter(map(len, strings_b), np.int64, count),
            ).astype(np.float64)
            out = np.zeros(count, dtype=np.float64)
            positive = longest > 0.0
            # float / float division in the scalar expression order; the
            # longest == 0 rows stay 0.0 exactly like the scalar guard.
            out[positive] = distances[positive] / longest[positive]
            return out

        return batch_pair_column(
            columns_a, columns_b, kernel, self.evaluate, memo=memo, name=self.name
        )
