"""Additional token/set distance measures from the Silk catalogue.

Dice and overlap coefficients complement Jaccard for token sets;
Monge-Elkan is the classic hybrid measure that matches each token of
one value against its best counterpart in the other — robust to
reordered multi-token names. ``relativeNumeric`` scales the numeric
difference by magnitude, which suits quantities spanning orders of
magnitude (molecular weights, populations).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distances.base import (
    DistanceMeasure,
    INFINITE_DISTANCE,
    ValueColumn,
    fallback_column,
)
from repro.distances.jaro import jaro_winkler_similarity
from repro.distances.numeric import parse_number
from repro.distances.strings import (
    BoundedValueMemo,
    StringKernelMemo,
    count_nonempty,
    set_algebra_column,
    string_backend,
)


class _SetAlgebraDistance(DistanceMeasure):
    """Shared batch plumbing for measures over the value sets
    themselves (dice, overlap): set sizes and intersections come from
    the sorted integer-token-code pass, the subclass supplies the
    scalar measure and its vectorized arithmetic (same operation order
    for bit-parity)."""

    batch_capable = True
    memo_capable = True

    def _finish(
        self, intersections: np.ndarray, sizes_a: np.ndarray, sizes_b: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def evaluate_column(
        self,
        columns_a: ValueColumn,
        columns_b: ValueColumn,
        memo: StringKernelMemo | None = None,
    ) -> np.ndarray:
        backend = string_backend()
        if backend == "python":
            if memo is not None:
                memo.record_routing(
                    self.name, fallback=count_nonempty(columns_a, columns_b)
                )
            return fallback_column(self.evaluate, columns_a, columns_b)
        return set_algebra_column(
            columns_a, columns_b, self._finish, memo=memo, name=self.name
        )


class DiceDistance(_SetAlgebraDistance):
    """1 - 2|A n B| / (|A| + |B|) over the two value sets."""

    name = "dice"
    threshold_range = (0.1, 1.0)

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        set_a = set(values_a)
        set_b = set(values_b)
        if not set_a or not set_b:
            return INFINITE_DISTANCE
        return 1.0 - 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))

    def _finish(
        self, intersections: np.ndarray, sizes_a: np.ndarray, sizes_b: np.ndarray
    ) -> np.ndarray:
        return 1.0 - 2.0 * intersections / (sizes_a + sizes_b)


class OverlapDistance(_SetAlgebraDistance):
    """1 - |A n B| / min(|A|, |B|): full containment scores 0."""

    name = "overlap"
    threshold_range = (0.1, 1.0)

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        set_a = set(values_a)
        set_b = set(values_b)
        if not set_a or not set_b:
            return INFINITE_DISTANCE
        return 1.0 - len(set_a & set_b) / min(len(set_a), len(set_b))

    def _finish(
        self, intersections: np.ndarray, sizes_a: np.ndarray, sizes_b: np.ndarray
    ) -> np.ndarray:
        return 1.0 - intersections / np.minimum(sizes_a, sizes_b)


class MongeElkanDistance(DistanceMeasure):
    """Monge-Elkan with a Jaro-Winkler inner measure.

    For each token of the first value the best-matching token of the
    second is found; the distance is one minus the average of those
    best similarities. Asymmetric by definition; this implementation
    symmetrises by taking the smaller of the two directions.
    """

    name = "mongeElkan"
    threshold_range = (0.05, 0.6)
    max_tokens = 16

    def __init__(self) -> None:
        # Value tuples recur across calls (one tuple per unique
        # entity), so token lists are memoised per distinct tuple.
        self._token_memo = BoundedValueMemo()

    def _tokens(self, values: Sequence[str]) -> list[str]:
        return self._token_memo.get(values, self._split)

    def _split(self, values: Sequence[str]) -> list[str]:
        tokens: list[str] = []
        for value in values:
            tokens.extend(value.split())
            if len(tokens) >= self.max_tokens:
                break
        return tokens[: self.max_tokens]

    def _directed(self, tokens_a: list[str], tokens_b: list[str]) -> float:
        total = 0.0
        for token_a in tokens_a:
            total += max(
                jaro_winkler_similarity(token_a, token_b) for token_b in tokens_b
            )
        return total / len(tokens_a)

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        tokens_a = self._tokens(values_a)
        tokens_b = self._tokens(values_b)
        if not tokens_a or not tokens_b:
            return INFINITE_DISTANCE
        similarity = min(
            self._directed(tokens_a, tokens_b),
            self._directed(tokens_b, tokens_a),
        )
        return 1.0 - similarity


class RelativeNumericDistance(DistanceMeasure):
    """|a - b| / max(|a|, |b|): a scale-free numeric distance in [0, 2]."""

    name = "relativeNumeric"
    threshold_range = (0.01, 0.5)

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        numbers_a = [n for v in values_a if (n := parse_number(v)) is not None]
        numbers_b = [n for v in values_b if (n := parse_number(v)) is not None]
        if not numbers_a or not numbers_b:
            return INFINITE_DISTANCE
        best = INFINITE_DISTANCE
        for a in numbers_a:
            for b in numbers_b:
                scale = max(abs(a), abs(b))
                if scale == 0.0:
                    distance = 0.0
                else:
                    distance = abs(a - b) / scale
                best = min(best, distance)
        return best
