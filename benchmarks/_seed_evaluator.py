"""The pre-engine ``PairEvaluator`` implementation, frozen verbatim.

``repro.core.evaluation.PairEvaluator`` now delegates to the compiled
engine (``repro.engine``); this module preserves the original per-pair
loop so ``bench_micro_engine.py`` can measure the engine against the
exact path it replaced. Do not "fix" or optimise this file — it is a
measurement baseline, not production code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.evaluation import evaluate_value
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    SimilarityNode,
    ValueNode,
)
from repro.data.entity import Entity
from repro.distances.base import INFINITE_DISTANCE
from repro.distances.registry import DistanceRegistry
from repro.distances.registry import default_registry as default_distances
from repro.transforms.registry import TransformationRegistry
from repro.transforms.registry import default_registry as default_transforms


class SeedPairEvaluator:
    """The seed repository's batch evaluator (per-pair Python loop with
    clear-at-capacity caches)."""

    def __init__(
        self,
        pairs: Sequence[tuple[Entity, Entity]],
        distances: DistanceRegistry | None = None,
        transforms: TransformationRegistry | None = None,
        max_cached_comparisons: int = 30_000,
        max_cached_values: int = 500_000,
    ):
        self._pairs = list(pairs)
        self._distances = distances if distances is not None else default_distances()
        self._transforms = (
            transforms if transforms is not None else default_transforms()
        )
        self._comparison_cache: dict[tuple, np.ndarray] = {}
        self._value_cache: dict[tuple, tuple[str, ...]] = {}
        self._max_cached_comparisons = max_cached_comparisons
        self._max_cached_values = max_cached_values
        self.cache_hits = 0
        self.cache_misses = 0

    def __len__(self) -> int:
        return len(self._pairs)

    def _values(self, node: ValueNode, entity: Entity, side: str) -> tuple[str, ...]:
        key = (node, side, entity.uid)
        cached = self._value_cache.get(key)
        if cached is not None:
            return cached
        values = evaluate_value(node, entity, self._transforms)
        if len(self._value_cache) >= self._max_cached_values:
            self._value_cache.clear()
        self._value_cache[key] = values
        return values

    def scores(self, node: SimilarityNode) -> np.ndarray:
        if isinstance(node, ComparisonNode):
            return self._comparison_scores(node)
        if isinstance(node, AggregationNode):
            return self._aggregation_scores(node)
        raise TypeError(f"not a similarity operator: {type(node).__name__}")

    def _comparison_scores(self, node: ComparisonNode) -> np.ndarray:
        key = (node.metric, node.threshold, node.source, node.target)
        cached = self._comparison_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        measure = self._distances.get(node.metric)
        threshold = node.threshold
        out = np.zeros(len(self._pairs), dtype=np.float64)
        for i, (entity_a, entity_b) in enumerate(self._pairs):
            values_a = self._values(node.source, entity_a, "a")
            if not values_a:
                continue
            values_b = self._values(node.target, entity_b, "b")
            if not values_b:
                continue
            distance = measure.evaluate(values_a, values_b)
            if distance >= INFINITE_DISTANCE:
                continue
            if threshold <= 0.0:
                if distance == 0.0:
                    out[i] = 1.0
            elif distance <= threshold:
                out[i] = 1.0 - distance / threshold
        out.setflags(write=False)
        if len(self._comparison_cache) >= self._max_cached_comparisons:
            self._comparison_cache.clear()
        self._comparison_cache[key] = out
        return out

    def _aggregation_scores(self, node: AggregationNode) -> np.ndarray:
        child_scores = [self.scores(child) for child in node.operators]
        stacked = np.vstack(child_scores)
        if node.function == "min":
            return stacked.min(axis=0)
        if node.function == "max":
            return stacked.max(axis=0)
        if node.function == "wmean":
            weights = np.array(
                [child.weight for child in node.operators], dtype=np.float64
            )
            return weights @ stacked / weights.sum()
        raise ValueError(f"unknown aggregation function {node.function!r}")

    def predictions(self, node: SimilarityNode) -> np.ndarray:
        return self.scores(node) >= 0.5
