"""Table 10: GenLink learning curve on NYT (OAEI 2011 baselines:
AgreementMaker 0.69, SEREMI 0.68, Zhishi.links 0.92)."""

from repro.experiments.drivers import learning_curve

from benchmarks._util import strict_assertions, emit, learning_curve_table


def test_table10_nyt(benchmark, results_dir):
    curve = benchmark.pedantic(
        lambda: learning_curve("nyt", seed=10), rounds=1, iterations=1
    )
    text = learning_curve_table(
        "Table 10: NYT",
        curve,
        references={
            "AgreementMaker (paper)": "F1 0.69",
            "SEREMI (paper)": "F1 0.68",
            "Zhishi.links (paper)": "F1 0.92",
            "GenLink (paper, iter 50)": "train 0.977 (0.024), validation 0.974 (0.026)",
        },
    )
    emit(results_dir, "table10_nyt", text)
    rows = curve.rows
    if not strict_assertions():
        return
    # Shape: NYT is the slow-convergence dataset — the curve keeps
    # climbing well past the initial population.
    assert rows[-1].train_f_measure.mean > rows[0].train_f_measure.mean + 0.05
    assert rows[-1].validation_f_measure.mean > 0.8
