"""Table 5: entity and reference link counts of all six datasets."""

from repro.experiments.drivers import dataset_statistics
from repro.experiments.tables import format_table

from benchmarks._util import emit


def test_table05_dataset_statistics(benchmark, results_dir):
    rows = benchmark.pedantic(dataset_statistics, rounds=1, iterations=1)
    text = format_table(
        ["Dataset", "|A|", "|B|", "|R+|", "|R-|"],
        [
            [
                r["name"],
                r["entities_a"],
                r["entities_b"],
                r["positive_links"],
                r["negative_links"],
            ]
            for r in rows
        ],
        title="Table 5: entities and reference links per data set",
    )
    emit(results_dir, "table05_datasets", text)
    assert len(rows) == 6
    for row in rows:
        assert row["positive_links"] > 0
