"""Table 12: GenLink learning curve on DBpediaDrugBank.

The paper's headline here: learned rules reach F1 0.994 using less than
half the comparisons and a tenth of the transformations of the
13-comparison / 33-transformation human-written rule. The bench also
reports the learned rules' average comparison and transformation
counts so that claim can be checked.
"""

from repro.experiments.drivers import learning_curve

from benchmarks._util import strict_assertions, emit, learning_curve_table


def test_table12_dbpedia_drugbank(benchmark, results_dir):
    curve = benchmark.pedantic(
        lambda: learning_curve("dbpedia_drugbank", seed=12), rounds=1, iterations=1
    )
    final = curve.final_row()
    complexity = (
        f"learned rule complexity at final iteration: "
        f"{final.comparisons.format(1)} comparisons, "
        f"{final.transformations.format(1)} transformations "
        f"(human rule: 13 comparisons, 33 transformations; "
        f"paper learned: 5.6 comparisons, 3.2 transformations)"
    )
    text = learning_curve_table(
        "Table 12: DBpediaDrugBank",
        curve,
        references={
            "GenLink (paper, iter 50)": "train 0.998 (0.001), validation 0.994 (0.002)",
            "Complexity": complexity,
        },
    )
    emit(results_dir, "table12_dbpedia_drugbank", text)
    if not strict_assertions():
        return
    assert final.validation_f_measure.mean > 0.95
    # Parsimony: far fewer comparisons than the human rule's 13.
    assert final.comparisons.mean < 13
