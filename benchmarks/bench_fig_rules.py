"""Figures 2, 7 and 8: linkage rule trees, hand-built and learned.

Figure 2 is the paper's running example (min of a lower-cased label
comparison and a geographic comparison); Figures 7 and 8 are rules
GenLink learned on Cora with and without transformations. This bench
renders our equivalents: the reconstructed Figure 2 rule, plus the
rules actually learned on our Cora dataset in both configurations.
"""

import random

from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.representation import NONLINEAR
from repro.core.rule import LinkageRule
from repro.core.serialization import render_rule
from repro.data.splits import train_validation_split
from repro.experiments.drivers import load_scaled
from repro.experiments.scale import current_scale

from benchmarks._util import emit


def figure2_rule() -> LinkageRule:
    return LinkageRule(
        AggregationNode(
            "min",
            (
                ComparisonNode(
                    "levenshtein",
                    1.0,
                    TransformationNode("lowerCase", (PropertyNode("label"),)),
                    TransformationNode("lowerCase", (PropertyNode("label"),)),
                ),
                ComparisonNode(
                    "geographic", 1000.0, PropertyNode("point"), PropertyNode("coord")
                ),
            ),
        )
    )


def _learn_cora_rule(representation=None):
    scale = current_scale()
    dataset = load_scaled("cora", scale, seed=77)
    rng = random.Random(77)
    train, _validation = train_validation_split(dataset.links, rng)
    config = GenLinkConfig(
        population_size=scale.population_size,
        max_iterations=scale.max_iterations,
    )
    if representation is not None:
        config.representation = representation
    result = GenLink(config).learn(dataset.source_a, dataset.source_b, train, rng=rng)
    return result


def test_figure_rules(benchmark, results_dir):
    def run():
        with_transforms = _learn_cora_rule()
        without_transforms = _learn_cora_rule(representation=NONLINEAR)
        return with_transforms, without_transforms

    with_transforms, without_transforms = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    sections = [
        render_rule(figure2_rule(), title="Figure 2: example linkage rule for cities"),
        "",
        render_rule(
            with_transforms.best_rule,
            title=(
                "Figure 7 equivalent: rule learned on Cora "
                f"(train F1 {with_transforms.history[-1].train_f_measure:.3f})"
            ),
        ),
        "",
        render_rule(
            without_transforms.best_rule,
            title=(
                "Figure 8 equivalent: learned without transformations "
                f"(train F1 {without_transforms.history[-1].train_f_measure:.3f})"
            ),
        ),
    ]
    emit(results_dir, "fig_rules", "\n".join(sections))
    assert with_transforms.best_rule.comparisons()
    assert without_transforms.best_rule.transformations() == []
