"""Table 7: GenLink learning curve on Cora, with the Carvalho et al.
reference row (their published result: train 0.900, validation 0.910;
our re-implementation is run here at the same scale as GenLink)."""

from repro.experiments.drivers import carvalho_reference, learning_curve

from benchmarks._util import strict_assertions, baseline_row, emit, learning_curve_table


def test_table07_cora(benchmark, results_dir):
    def run():
        curve = learning_curve("cora", seed=7)
        baseline = carvalho_reference("cora", seed=7)
        return curve, baseline

    curve, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    text = learning_curve_table(
        "Table 7: Cora",
        curve,
        references={
            "Carvalho et al. (reimplementation)": baseline_row(baseline),
            "Carvalho et al. (paper)": "train 0.900 (0.010), validation 0.910 (0.010)",
            "GenLink (paper, iter 50)": "train 0.969 (0.003), validation 0.966 (0.004)",
        },
    )
    emit(results_dir, "table07_cora", text)
    final = curve.final_row()
    if not strict_assertions():
        return
    # Shape: GenLink improves over its seeded start and ends well above
    # the transformation-free baseline regime.
    assert final.train_f_measure.mean > curve.rows[0].train_f_measure.mean
    assert final.validation_f_measure.mean > 0.85
