"""Store-backed experiment drivers: warm-vs-cold wall clock.

The Table-reproduction drivers route every run/seed through one shared
persistent engine store (``cache_dir=`` on
:func:`repro.experiments.drivers.learning_curve` /
:func:`~repro.experiments.drivers.representation_comparison`, ambient
``REPRO_ENGINE_CACHE``) instead of cold fresh sessions. This bench
records the end-to-end delta a warm re-invocation buys on the
``curve`` and ``representations`` experiments, and asserts that the
warm results are identical to the cold ones — the store is a pure
wall-clock optimisation.

Scale notes: runs at whatever ``REPRO_SCALE`` selects (CI smoke keeps
it to seconds). The GP's random draws are seeded, so cold and warm
invocations execute the same learning trajectory; only where the
distance columns come from differs.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import drivers
from repro.experiments.scale import current_scale

from benchmarks._util import emit


def _rows_key(result):
    return [
        (
            row.iteration,
            row.train_f_measure.mean,
            row.validation_f_measure.mean,
        )
        for row in result.rows
    ]


@pytest.mark.parametrize("experiment", ["curve", "representations"])
def test_store_backed_driver_warm_rerun(experiment, results_dir, tmp_path):
    cache_dir = str(tmp_path / "engine-cache")
    scale = current_scale()

    def invoke(directory):
        if experiment == "curve":
            return _rows_key(
                drivers.learning_curve(
                    "restaurant", scale=scale, seed=3, cache_dir=directory
                )
            )
        table = drivers.representation_comparison(
            ("restaurant",), scale=scale, seed=3, cache_dir=directory
        )
        return {
            name: {rep: value.mean for rep, value in row.items()}
            for name, row in table.items()
        }

    start = time.perf_counter()
    cold = invoke(cache_dir)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = invoke(cache_dir)
    warm_seconds = time.perf_counter() - start

    start = time.perf_counter()
    uncached = invoke("")  # "" forces the persistent tier off
    uncached_seconds = time.perf_counter() - start

    assert warm == cold  # the store never changes results
    assert uncached == cold
    emit(
        results_dir,
        f"store_drivers_{experiment}",
        (
            f"store-backed driver '{experiment}' (restaurant): "
            f"cold {cold_seconds:.2f}s, warm rerun {warm_seconds:.2f}s "
            f"({cold_seconds / max(warm_seconds, 1e-9):.2f}x), "
            f"store off {uncached_seconds:.2f}s"
        ),
    )
