"""Rule pruning: learned-rule complexity before and after pruning.

Section 6.2 reports that GenLink's parsimony pressure keeps learned
DBpediaDrugBank rules at 5.6 comparisons / 3.2 transformations versus
13 / 33 in the human-written rule. This bench extends that story: the
post-hoc pruner of :mod:`repro.core.pruning` shrinks learned rules
further without giving up training MCC, which is the property a human
auditor cares about before deploying a rule.
"""

from __future__ import annotations

import random

from repro.core.evaluation import PairEvaluator
from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.pruning import prune_rule
from repro.data.splits import train_validation_split
from repro.datasets import load_dataset
from repro.experiments.scale import current_scale
from repro.experiments.tables import format_table

from benchmarks._util import emit, strict_assertions

#: Datasets whose learned rules typically carry prunable structure.
_DATASETS = ("restaurant", "linkedmdb", "dbpedia_drugbank")


def _prune_on(name: str, seed: int) -> dict:
    scale = current_scale()
    dataset = load_dataset(
        name,
        seed=seed,
        scale=scale.effective_dataset_scale(0),
    )
    rng = random.Random(seed)
    train, __ = train_validation_split(dataset.links, rng)
    config = GenLinkConfig(
        population_size=max(30, scale.population_size // 2),
        max_iterations=max(5, scale.max_iterations // 2),
        # Weak parsimony lets redundancy survive so pruning has work.
        parsimony_weight=0.0005,
    )
    result = GenLink(config).learn(
        dataset.source_a, dataset.source_b, train, rng=rng
    )
    pairs, labels = train.labelled_pairs(dataset.source_a, dataset.source_b)
    pruned = prune_rule(result.best_rule, PairEvaluator(pairs), labels)
    return {
        "dataset": name,
        "operators_before": result.best_rule.operator_count(),
        "operators_after": pruned.rule.operator_count(),
        "comparisons_before": len(result.best_rule.comparisons()),
        "comparisons_after": len(pruned.rule.comparisons()),
        "mcc_before": pruned.mcc_before,
        "mcc_after": pruned.mcc_after,
        "edits": pruned.edits,
    }


def test_pruning_shrinks_learned_rules(benchmark, results_dir):
    rows_data = benchmark.pedantic(
        lambda: [_prune_on(name, seed=41) for name in _DATASETS],
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            row["dataset"],
            f"{row['operators_before']} -> {row['operators_after']}",
            f"{row['comparisons_before']} -> {row['comparisons_after']}",
            f"{row['mcc_before']:.3f} -> {row['mcc_after']:.3f}",
            row["edits"],
        ]
        for row in rows_data
    ]
    text = format_table(
        ["Dataset", "Operators", "Comparisons", "Train MCC", "Edits"],
        rows,
        title="Rule pruning: learned rules before -> after prune_rule",
    )
    emit(results_dir, "pruning", text)
    if not strict_assertions():
        return

    for row in rows_data:
        # Pruning must never grow a rule nor lose training MCC.
        assert row["operators_after"] <= row["operators_before"]
        assert row["mcc_after"] >= row["mcc_before"] - 1e-9
    assert any(
        row["operators_after"] < row["operators_before"] for row in rows_data
    ), "at least one learned rule should carry prunable structure"
