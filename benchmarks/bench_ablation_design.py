"""Ablation benches for this reproduction's own design choices.

DESIGN.md documents three decisions that go beyond the paper's text;
each is ablated here on the SiderDrugBank dataset (mid difficulty,
fast to learn):

* **elitism = 1** — Algorithm 1 refills the population entirely from
  crossover; we keep one fitness-elite so curves are monotone.
* **parsimony weight 0.005** — the paper states 0.05 per operator,
  which provably prefers degenerate single-comparison rules over the
  multi-comparison rules the paper reports learning; we use a tenth.
* **measure exploration 0.25** — seeded comparisons occasionally draw
  a random measure so that measures absent from the Algorithm 2 list
  (e.g. jaccard) can enter the gene pool at all.
"""

from repro.core.genlink import GenLinkConfig
from repro.experiments.drivers import load_scaled
from repro.experiments.protocol import run_genlink_cross_validation
from repro.experiments.scale import current_scale
from repro.experiments.tables import format_table

from benchmarks._util import emit

DATASET = "sider_drugbank"


def _run(config: GenLinkConfig, seed: int = 40):
    scale = current_scale()
    dataset = load_scaled(DATASET, scale, seed)
    result = run_genlink_cross_validation(
        dataset,
        config,
        runs=scale.runs,
        report_iterations=(scale.max_iterations,),
        seed=seed,
    )
    return result.final_row()


def test_ablation_design_choices(benchmark, results_dir):
    scale = current_scale()

    def run():
        base = dict(
            population_size=scale.population_size,
            max_iterations=scale.max_iterations,
        )
        variants = {
            "default": GenLinkConfig(**base),
            "no elitism": GenLinkConfig(**base, elitism=0),
            "paper parsimony 0.05": GenLinkConfig(**base, parsimony_weight=0.05),
            "no measure exploration": GenLinkConfig(**base, measure_exploration=0.0),
        }
        return {name: _run(config) for name, config in variants.items()}

    rows_by_variant = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            row.train_f_measure.format(),
            row.validation_f_measure.format(),
            row.comparisons.format(1),
        ]
        for name, row in rows_by_variant.items()
    ]
    text = format_table(
        ["Variant", "Train F1 (σ)", "Val F1 (σ)", "Comparisons (σ)"],
        rows,
        title=f"Design-choice ablations on {DATASET}",
    )
    emit(results_dir, "ablation_design", text)

    default = rows_by_variant["default"].validation_f_measure.mean
    # The default configuration should not be clearly dominated by any
    # ablated variant.
    for name, row in rows_by_variant.items():
        assert default >= row.validation_f_measure.mean - 0.05, name
