"""Benchmark suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one table or figure of the paper, prints it
(visible with ``-s``) and writes it to ``benchmarks/results/``. The
experiment scale is selected with ``REPRO_SCALE`` (smoke | bench |
paper); see ``repro.experiments.scale``.
"""

import pytest


@pytest.fixture(scope="session")
def results_dir():
    from pathlib import Path

    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path
