"""Frozen per-entity blocking baseline (pre-vectorization).

Verbatim copies of the index-construction paths that
``repro.matching.blocking.TokenBlocker`` and
``repro.matching.multiblock.build_comparison_index`` shipped before the
blocking front-end was vectorized: tokenisation/key extraction runs
once per *entity occurrence* (no distinct-value memoisation, no bulk
dict assembly, no executor fan-out). ``bench_micro_engine.py`` measures
the live implementations against these, and asserts the candidate
sets stay identical — the speedup must never buy a different result.

Do not "improve" this module; its value is being frozen.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.data.entity import Entity
from repro.data.source import DataSource

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)


def _tokens_of(entity: Entity, properties: Iterable[str]) -> set[str]:
    tokens: set[str] = set()
    for name in properties:
        for value in entity.values(name):
            tokens.update(t.lower() for t in _TOKEN_RE.findall(value))
    return tokens


def seed_token_index(
    source_b: DataSource, properties_b: list[str]
) -> dict[str, list[Entity]]:
    """The seed ``TokenBlocker.candidates`` index-construction loop."""
    index: dict[str, list[Entity]] = {}
    for entity_b in source_b:
        for token in _tokens_of(entity_b, properties_b):
            index.setdefault(token, []).append(entity_b)
    return index


class SeedTokenBlocker:
    """The seed per-entity token blocker (index built per call)."""

    def __init__(
        self,
        properties_a: Iterable[str],
        properties_b: Iterable[str] | None = None,
        max_block_size: int = 200,
    ):
        self._properties_a = list(properties_a)
        self._properties_b = (
            list(properties_b) if properties_b is not None else self._properties_a
        )
        self._max_block_size = max_block_size

    def candidates(self, source_a, source_b):
        index = seed_token_index(source_b, self._properties_b)
        dedup = source_a is source_b
        seen: set[tuple[str, str]] = set()
        for entity_a in source_a:
            for token in _tokens_of(entity_a, self._properties_a):
                block = index.get(token)
                if block is None or len(block) > self._max_block_size:
                    continue
                for entity_b in block:
                    if dedup:
                        if entity_a.uid >= entity_b.uid:
                            continue
                    elif entity_a.uid == entity_b.uid:
                        continue
                    key = (entity_a.uid, entity_b.uid)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield entity_a, entity_b


def seed_comparison_blocks(comparison, source_b, indexer, entity_values) -> dict:
    """The seed per-entity MultiBlock index-construction loop.

    ``entity_values(node, entity)`` supplies transformed values (the
    live path hands in the session value cache so both sides pay the
    same transformation cost and the timing isolates index assembly).
    """
    blocks: dict = {}
    for entity in source_b:
        values = entity_values(comparison.target, entity)
        for key in indexer.block_keys(values):
            blocks.setdefault(key, set()).add(entity.uid)
    return blocks
