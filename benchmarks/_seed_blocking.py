"""Frozen per-entity blocking baseline (pre-vectorization).

Two generations of frozen code live here:

* **Index construction** (PR 4 baseline): verbatim copies of the
  construction paths that ``repro.matching.blocking.TokenBlocker`` and
  ``repro.matching.multiblock.build_comparison_index`` shipped before
  the blocking front-end was vectorized — tokenisation/key extraction
  runs once per *entity occurrence* (no distinct-value memoisation, no
  bulk dict assembly, no executor fan-out).
* **Probing** (PR 5 baseline): verbatim copies of the per-entity probe
  loops the blockers shipped before batch probing —
  ``seed_token_probe`` (per-A-entity tokenise + per-uid seen-set
  loop), ``seed_snb_pairs`` (Python merge + sliding-window loop) and
  ``seed_multiblock_probe`` (per-entity recursive candidate algebra,
  no probe-key memoisation).

``bench_micro_engine.py`` measures the live implementations against
these, and asserts the candidate sets stay identical — the speedup
must never buy a different result. ``tests/test_probe_parity.py``
additionally pins batch probing to the frozen probe loops
property-based.

Do not "improve" this module; its value is being frozen.
"""

from __future__ import annotations

import re
from itertools import islice
from typing import Iterable, Iterator, Sequence

from repro.data.entity import Entity
from repro.data.source import DataSource

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)


def _tokens_of(entity: Entity, properties: Iterable[str]) -> set[str]:
    tokens: set[str] = set()
    for name in properties:
        for value in entity.values(name):
            tokens.update(t.lower() for t in _TOKEN_RE.findall(value))
    return tokens


def seed_token_index(
    source_b: DataSource, properties_b: list[str]
) -> dict[str, list[Entity]]:
    """The seed ``TokenBlocker.candidates`` index-construction loop."""
    index: dict[str, list[Entity]] = {}
    for entity_b in source_b:
        for token in _tokens_of(entity_b, properties_b):
            index.setdefault(token, []).append(entity_b)
    return index


class SeedTokenBlocker:
    """The seed per-entity token blocker (index built per call)."""

    def __init__(
        self,
        properties_a: Iterable[str],
        properties_b: Iterable[str] | None = None,
        max_block_size: int = 200,
    ):
        self._properties_a = list(properties_a)
        self._properties_b = (
            list(properties_b) if properties_b is not None else self._properties_a
        )
        self._max_block_size = max_block_size

    def candidates(self, source_a, source_b):
        index = seed_token_index(source_b, self._properties_b)
        dedup = source_a is source_b
        seen: set[tuple[str, str]] = set()
        for entity_a in source_a:
            for token in _tokens_of(entity_a, self._properties_a):
                block = index.get(token)
                if block is None or len(block) > self._max_block_size:
                    continue
                for entity_b in block:
                    if dedup:
                        if entity_a.uid >= entity_b.uid:
                            continue
                    elif entity_a.uid == entity_b.uid:
                        continue
                    key = (entity_a.uid, entity_b.uid)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield entity_a, entity_b


def seed_comparison_blocks(comparison, source_b, indexer, entity_values) -> dict:
    """The seed per-entity MultiBlock index-construction loop.

    ``entity_values(node, entity)`` supplies transformed values (the
    live path hands in the session value cache so both sides pay the
    same transformation cost and the timing isolates index assembly).
    """
    blocks: dict = {}
    for entity in source_b:
        values = entity_values(comparison.target, entity)
        for key in indexer.block_keys(values):
            blocks.setdefault(key, set()).add(entity.uid)
    return blocks


# ---------------------------------------------------------------------------
# Frozen per-entity probe loops (the pre-batch-probing implementations,
# operating over *live-built* indexes so timings isolate the probe side).
# ---------------------------------------------------------------------------

#: Frozen copy of the bulk tokenisation the per-entity probe loop used
#: (the probe baseline postdates bulk tokenisation; what it predates is
#: batch probing, so it tokenises exactly like the live path).
_ASCII_TOKEN_TABLE = {i: " " for i in range(128) if not chr(i).isalnum()}


def _text_tokens(text: str) -> list[str]:
    if text.isascii():
        return text.lower().translate(_ASCII_TOKEN_TABLE).split()
    return [token.lower() for token in _TOKEN_RE.findall(text)]


def _entity_text(entity: Entity, properties: Sequence[str]) -> str:
    values = entity.properties
    parts: list[str] = []
    for name in properties:
        entity_values = values.get(name)
        if entity_values:
            parts.extend(entity_values)
    return " ".join(parts)


def seed_token_probe(
    source_a: DataSource,
    source_b: DataSource,
    index: dict,
    properties_a: Sequence[str],
) -> Iterator[tuple[Entity, Entity]]:
    """The pre-batch ``TokenBlocker`` probe loop: per A entity,
    tokenise, look up each token's block and dedup partners through a
    per-entity Python ``seen`` set."""
    dedup = source_a is source_b
    for entity_a in source_a:
        uid_a = entity_a.uid
        seen: set[str] = set()
        tokens = dict.fromkeys(_text_tokens(_entity_text(entity_a, properties_a)))
        for token in tokens:
            block = index.get(token)
            if block is None:
                continue
            for uid_b in block:
                if dedup:
                    if uid_a >= uid_b:
                        continue
                elif uid_a == uid_b:
                    continue
                if uid_b in seen:
                    continue
                seen.add(uid_b)
                yield entity_a, source_b.get(uid_b)


def seed_snb_pairs(
    source_a: DataSource,
    source_b: DataSource,
    index_a: Sequence[tuple[str, str]],
    index_b: Sequence[tuple[str, str]],
    window: int,
) -> Iterator[tuple[Entity, Entity]]:
    """The pre-batch sorted-neighbourhood probe: a Python two-index
    merge into one tagged list, then a per-position sliding-window
    loop with a global seen-set."""
    dedup = source_a is source_b
    if dedup:
        tagged = [(source_a.get(uid), "a") for __, uid in index_a]
    else:
        tagged = []
        i = j = 0
        while i < len(index_a) and j < len(index_b):
            if index_a[i][0] <= index_b[j][0]:
                tagged.append((source_a.get(index_a[i][1]), "a"))
                i += 1
            else:
                tagged.append((source_b.get(index_b[j][1]), "b"))
                j += 1
        tagged.extend(
            (source_a.get(uid), "a") for __, uid in islice(index_a, i, None)
        )
        tagged.extend(
            (source_b.get(uid), "b") for __, uid in islice(index_b, j, None)
        )
    seen: set[tuple[str, str]] = set()
    for i, (entity_i, side_i) in enumerate(tagged):
        for j in range(i + 1, min(i + window, len(tagged))):
            entity_j, side_j = tagged[j]
            if dedup:
                a, b = sorted((entity_i, entity_j), key=lambda e: e.uid)
            elif side_i == "a" and side_j == "b":
                a, b = entity_i, entity_j
            elif side_i == "b" and side_j == "a":
                a, b = entity_j, entity_i
            else:
                continue
            key = (a.uid, b.uid)
            if key not in seen:
                seen.add(key)
                yield a, b


def seed_multiblock_node_candidates(
    node, entity: Entity, indexes: dict, all_uids: frozenset, session
) -> frozenset:
    """The pre-batch per-entity MultiBlock candidate algebra: probe
    keys derived afresh for every entity (no memoisation across
    entities sharing a transformed value tuple)."""
    from repro.core.nodes import AggregationNode, ComparisonNode

    if isinstance(node, ComparisonNode):
        index = indexes.get(id(node))
        if index is None:
            return all_uids
        values = session.entity_values(node.source, entity)
        uids: set[str] = set()
        for key in index.indexer.probe_keys(values):
            uids.update(index.blocks.get(key, ()))
        return frozenset(uids)
    assert isinstance(node, AggregationNode)
    child_sets = [
        seed_multiblock_node_candidates(child, entity, indexes, all_uids, session)
        for child in node.operators
    ]
    if node.function == "min":
        result = child_sets[0]
        for child_set in child_sets[1:]:
            result = result & child_set
        return result
    result = frozenset()
    for child_set in child_sets:
        result = result | child_set
    return result


def seed_token_probe_kernel(
    source_a: DataSource, index: dict, properties_a: Sequence[str]
) -> list[tuple[str, list[str]]]:
    """The probe *kernel* of the pre-batch token loop — per-entity
    partner computation (tokenise, per-token block lookup, per-uid
    ``seen``-set dedup) with the pair-level dedup/self filtering
    lifted out, matching the unfiltered ``probe_batch`` contract.
    Partner order is the loop's first-occurrence order."""
    out: list[tuple[str, list[str]]] = []
    for entity_a in source_a:
        seen: set[str] = set()
        partners: list[str] = []
        tokens = dict.fromkeys(_text_tokens(_entity_text(entity_a, properties_a)))
        for token in tokens:
            block = index.get(token)
            if block is None:
                continue
            for uid_b in block:
                if uid_b in seen:
                    continue
                seen.add(uid_b)
                partners.append(uid_b)
        out.append((entity_a.uid, partners))
    return out


def seed_snb_probe_kernel(
    source_a: DataSource,
    source_b: DataSource,
    index_a: Sequence[tuple[str, str]],
    index_b: Sequence[tuple[str, str]],
    window: int,
) -> list[tuple[str, str]]:
    """The probe kernel of the pre-batch sorted-neighbourhood loop —
    the Python two-index merge plus the sliding-window scan, emitting
    ``(uid_a, uid_b)`` window pairs without entity resolution."""
    dedup = source_a is source_b
    if dedup:
        tagged = [(uid, "a") for __, uid in index_a]
    else:
        tagged = []
        i = j = 0
        while i < len(index_a) and j < len(index_b):
            if index_a[i][0] <= index_b[j][0]:
                tagged.append((index_a[i][1], "a"))
                i += 1
            else:
                tagged.append((index_b[j][1], "b"))
                j += 1
        tagged.extend((uid, "a") for __, uid in islice(index_a, i, None))
        tagged.extend((uid, "b") for __, uid in islice(index_b, j, None))
    out: list[tuple[str, str]] = []
    for i, (uid_i, side_i) in enumerate(tagged):
        for j in range(i + 1, min(i + window, len(tagged))):
            uid_j, side_j = tagged[j]
            if dedup:
                out.append((uid_i, uid_j) if uid_i < uid_j else (uid_j, uid_i))
            elif side_i == "a" and side_j == "b":
                out.append((uid_i, uid_j))
            elif side_i == "b" and side_j == "a":
                out.append((uid_j, uid_i))
    return out


def seed_multiblock_probe_kernel(
    rule, source_a: DataSource, indexes: dict, all_uids: frozenset, session
) -> list[tuple[str, list[str]]]:
    """The probe kernel of the pre-batch MultiBlock loop — one
    recursive candidate-algebra evaluation per entity plus the
    per-entity sort that produced the deterministic emission order."""
    out: list[tuple[str, list[str]]] = []
    for entity_a in source_a:
        uids = seed_multiblock_node_candidates(
            rule.root, entity_a, indexes, all_uids, session
        )
        out.append((entity_a.uid, sorted(uids)))
    return out


def seed_multiblock_probe(
    rule,
    source_a: DataSource,
    source_b: DataSource,
    indexes: dict,
    session,
) -> Iterator[tuple[Entity, Entity]]:
    """The pre-batch ``MultiBlocker`` probe loop: per A entity, one
    recursive candidate-algebra evaluation, partners emitted in sorted
    uid order."""
    by_uid = {entity.uid: entity for entity in source_b}
    all_uids = frozenset(by_uid)
    dedup = source_a is source_b
    for entity_a in source_a:
        uids = seed_multiblock_node_candidates(
            rule.root, entity_a, indexes, all_uids, session
        )
        for uid in sorted(uids):
            if dedup and entity_a.uid >= uid:
                continue
            if not dedup and entity_a.uid == uid:
                continue
            yield entity_a, by_uid[uid]
