"""Shared helpers for the benchmark suite."""

from __future__ import annotations

from pathlib import Path

from repro.experiments.drivers import BaselineReference
from repro.experiments.protocol import CrossValidationResult
from repro.experiments.scale import current_scale
from repro.experiments.tables import format_table


def strict_assertions() -> bool:
    """Shape assertions only bind at bench/paper scale; the smoke scale
    exists to exercise the code paths, not to reproduce results."""
    return current_scale().name != "smoke"


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n[REPRO_SCALE={current_scale().name}]\n{text}\n"
    print(banner)
    (results_dir / f"{name}.txt").write_text(banner.lstrip("\n") + "\n")


def learning_curve_table(
    title: str,
    result: CrossValidationResult,
    references: dict[str, str] | None = None,
) -> str:
    """Format a Tables 7-12 style learning curve."""
    rows = [
        [
            row.iteration,
            row.seconds.format(1),
            row.train_f_measure.format(),
            row.validation_f_measure.format(),
        ]
        for row in result.rows
    ]
    text = format_table(
        ["Iter.", "Time in s (σ)", "Train. F1 (σ)", "Val. F1 (σ)"],
        rows,
        title=f"{title} ({result.runs} runs)",
    )
    if references:
        lines = [text, ""]
        for label, value in references.items():
            lines.append(f"Reference {label}: {value}")
        text = "\n".join(lines)
    return text


def baseline_row(reference: BaselineReference) -> str:
    return (
        f"train {reference.train_f_measure.format()}, "
        f"validation {reference.validation_f_measure.format()}"
    )
