"""Active learning: committee queries versus random queries.

The paper's companion work [21] (Isele, Jentzsch & Bizer, ICWE 2012)
minimises the number of reference links a human must confirm by
query-by-committee selection. This bench reproduces the headline
comparison on the restaurant dataset: reference-set F1 after a fixed
query budget, committee strategy versus random sampling.
"""

from __future__ import annotations

from repro.core.active import ActiveGenLink, ActiveLearningConfig, oracle_from_links
from repro.core.genlink import GenLinkConfig
from repro.datasets import load_dataset
from repro.experiments.scale import current_scale
from repro.experiments.tables import format_table

from benchmarks._util import emit, strict_assertions


def _run_strategy(strategy: str, seed: int) -> dict:
    scale = current_scale()
    dataset = load_dataset(
        "restaurant", seed=seed, scale=scale.effective_dataset_scale(0)
    )
    queries = 16 if scale.name != "smoke" else 8
    config = ActiveLearningConfig(
        max_queries=queries,
        bootstrap_queries=4,
        strategy=strategy,
        genlink=GenLinkConfig(
            population_size=max(30, scale.population_size // 2),
            max_iterations=max(5, scale.max_iterations // 3),
        ),
    )
    candidates = list(dataset.links.positive) + list(dataset.links.negative)
    oracle = oracle_from_links(dataset.links.positive)
    result = ActiveGenLink(config).run(
        dataset.source_a,
        dataset.source_b,
        candidates,
        oracle,
        rng=seed,
        reference=dataset.links,
    )
    return {
        "strategy": strategy,
        "queries": len(result.queries),
        "final_f1": result.f_measure_curve[-1] if result.f_measure_curve else 0.0,
        "curve": result.f_measure_curve,
    }


def test_active_learning_committee_vs_random(benchmark, results_dir):
    rows_data = benchmark.pedantic(
        lambda: [
            _run_strategy("committee", seed=31),
            _run_strategy("random", seed=31),
        ],
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            row["strategy"],
            row["queries"],
            f"{row['final_f1']:.3f}",
            " ".join(f"{v:.2f}" for v in row["curve"][-6:]),
        ]
        for row in rows_data
    ]
    text = format_table(
        ["Strategy", "Queries", "Final F1", "F1 curve (tail)"],
        rows,
        title="Active learning on restaurant: committee vs random queries",
    )
    emit(results_dir, "active_learning", text)
    if not strict_assertions():
        return

    committee = next(r for r in rows_data if r["strategy"] == "committee")
    random_row = next(r for r in rows_data if r["strategy"] == "random")
    # Shape claim of [21]: with a small query budget, committee-selected
    # queries reach at least the F1 of random queries.
    assert committee["final_f1"] >= random_row["final_f1"] - 0.05
    assert committee["final_f1"] >= 0.85
