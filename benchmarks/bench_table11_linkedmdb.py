"""Table 11: GenLink learning curve on LinkedMDB (vs. a human-written
rule comparing titles and release dates)."""

from repro.experiments.drivers import learning_curve

from benchmarks._util import strict_assertions, emit, learning_curve_table


def test_table11_linkedmdb(benchmark, results_dir):
    curve = benchmark.pedantic(
        lambda: learning_curve("linkedmdb", seed=11), rounds=1, iterations=1
    )
    text = learning_curve_table(
        "Table 11: LinkedMDB",
        curve,
        references={
            "GenLink (paper, iter 50)": "train 1.000 (0.000), validation 0.999 (0.002)",
        },
    )
    emit(results_dir, "table11_linkedmdb", text)
    final = curve.final_row()
    if not strict_assertions():
        return
    # Shape: high training fit and validation accuracy. (Our synthetic
    # LinkedMDB injects remake and same-year corner cases at a higher
    # rate than the original's manually curated negatives, so absolute
    # scores trail the paper's 0.999 at reduced GP budgets.)
    assert final.train_f_measure.mean > 0.9
    assert final.validation_f_measure.mean > 0.85
