"""Table 14: initial population F-measure, random vs seeded generation.

Paper values:

                     Random         Seeded
    Cora             0.849 (0.045)  0.865 (0.018)
    Restaurant       0.963 (0.010)  0.985 (0.012)
    SiderDrugBank    0.624 (0.181)  0.848 (0.013)
    NYT              0.178 (0.164)  0.701 (0.072)
    LinkedMDB        0.719 (0.175)  0.975 (0.008)
    DBpediaDrugBank  0.702 (0.217)  0.957 (0.013)

Shape: on datasets with few properties seeding barely matters; on wide
schemata (NYT, DBpediaDrugBank, LinkedMDB) it is the difference between
a useless and a strong initial population.
"""

from repro.datasets import DATASET_NAMES, dataset_spec
from repro.experiments.drivers import seeding_comparison
from repro.experiments.tables import format_table

from benchmarks._util import strict_assertions, emit


def test_table14_seeding(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: seeding_comparison(DATASET_NAMES, seed=14), rounds=1, iterations=1
    )
    rows = [
        [name, table[name]["random"].format(), table[name]["seeded"].format()]
        for name in table
    ]
    text = format_table(
        ["Dataset", "Random", "Seeded"],
        rows,
        title="Table 14: initial population F1 (best rule, mean over runs)",
    )
    emit(results_dir, "table14_seeding", text)
    if not strict_assertions():
        return

    # Shape: seeding never hurts, and on wide schemata it wins big.
    for name in table:
        assert table[name]["seeded"].mean >= table[name]["random"].mean - 0.02
    wide = [n for n in table if (dataset_spec(n).properties_b or 0) >= 46]
    assert any(
        table[n]["seeded"].mean > table[n]["random"].mean + 0.15 for n in wide
    ), "seeding should clearly win on at least one wide-schema dataset"
