"""The pre-vectorization string-distance column path, frozen verbatim.

``repro.distances`` now routes the string-measure family (levenshtein,
jaro/jaro-winkler, jaccard and the token set measures) through batch
numpy kernels; this module preserves the original per-pair scalar
implementations plus the deduplicated ``fallback_column`` loop that
``evaluate_column`` used before, so ``bench_micro_engine.py`` can
measure the kernels against the exact path they replaced. Do not "fix"
or optimise this file — it is a measurement baseline, not production
code.

Note the frozen ``seed_levenshtein`` keeps the seed's loose out-of-range
contract (any value above the bound may come back); the live scalar now
pins out-of-range results to exactly ``bound + 1``. The benchmark
therefore asserts bit-identity against the *live* scalar oracle and uses
this module for timing only.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.distances.base import INFINITE_DISTANCE

ValueColumn = Sequence[Sequence[str]]


def seed_levenshtein(a: str, b: str, bound: int | None = None) -> float:
    """Banded edit distance, seed version (row-at-a-time Python DP)."""
    if a == b:
        return 0.0
    la, lb = len(a), len(b)
    if la == 0:
        return float(lb)
    if lb == 0:
        return float(la)
    if bound is not None and abs(la - lb) > bound:
        return float(bound + 1)
    if la > lb:
        a, b = b, a
        la, lb = lb, la
    previous = list(range(la + 1))
    current = [0] * (la + 1)
    for j in range(1, lb + 1):
        current[0] = j
        bj = b[j - 1]
        row_min = current[0]
        for i in range(1, la + 1):
            cost = 0 if a[i - 1] == bj else 1
            value = min(
                previous[i] + 1,
                current[i - 1] + 1,
                previous[i - 1] + cost,
            )
            current[i] = value
            if value < row_min:
                row_min = value
        if bound is not None and row_min > bound:
            return float(bound + 1)
        previous, current = current, previous
    return float(previous[la])


def seed_jaro_similarity(a: str, b: str) -> float:
    """Classic Jaro similarity, seed version (per-character loops)."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    if window < 0:
        window = 0
    matched_a = [False] * la
    matched_b = [False] * lb
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == ca:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(la):
        if matched_a[i]:
            while not matched_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / la + m / lb + (m - transpositions) / m) / 3.0


def seed_jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    base = seed_jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def seed_jaccard_distance(values_a: Iterable[str], values_b: Iterable[str]) -> float:
    set_a = set(values_a)
    set_b = set(values_b)
    if not set_a or not set_b:
        return INFINITE_DISTANCE
    intersection = len(set_a & set_b)
    union = len(set_a | set_b)
    return 1.0 - intersection / union


def seed_dice_distance(values_a: Iterable[str], values_b: Iterable[str]) -> float:
    set_a = set(values_a)
    set_b = set(values_b)
    if not set_a or not set_b:
        return INFINITE_DISTANCE
    return 1.0 - 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))


def seed_min_over_pairs(
    values_a: Sequence[str],
    values_b: Sequence[str],
    pair_distance: Callable[[str, str], float],
    max_pairs: int = 256,
) -> float:
    """Minimum over the value cross product with the 256-pair budget."""
    if not values_a or not values_b:
        return INFINITE_DISTANCE
    best = INFINITE_DISTANCE
    budget = max_pairs
    for va in values_a:
        for vb in values_b:
            d = pair_distance(va, vb)
            if d < best:
                best = d
                if best == 0.0:
                    return 0.0
            budget -= 1
            if budget <= 0:
                return best
    return best


def seed_string_column(
    evaluate: Callable[[Sequence[str], Sequence[str]], float],
    columns_a: ValueColumn,
    columns_b: ValueColumn,
) -> np.ndarray:
    """The pre-kernel ``evaluate_column``: per-pair loop deduplicated by
    value-tuple identity — exactly the seed ``fallback_column``."""
    if len(columns_a) != len(columns_b):
        raise ValueError(
            f"column length mismatch: {len(columns_a)} vs {len(columns_b)}"
        )
    out = np.full(len(columns_a), INFINITE_DISTANCE, dtype=np.float64)
    memo: dict[tuple[int, int], float] = {}
    for i, (values_a, values_b) in enumerate(zip(columns_a, columns_b)):
        if not values_a or not values_b:
            continue
        key = (id(values_a), id(values_b))
        distance = memo.get(key)
        if distance is None:
            distance = evaluate(values_a, values_b)
            memo[key] = distance
        out[i] = distance
    return out


def seed_levenshtein_column(
    columns_a: ValueColumn, columns_b: ValueColumn, max_bound: int = 11
) -> np.ndarray:
    return seed_string_column(
        lambda va, vb: seed_min_over_pairs(
            va, vb, lambda x, y: seed_levenshtein(x, y, bound=max_bound)
        ),
        columns_a,
        columns_b,
    )


def seed_jaro_winkler_column(
    columns_a: ValueColumn, columns_b: ValueColumn
) -> np.ndarray:
    return seed_string_column(
        lambda va, vb: seed_min_over_pairs(
            va, vb, lambda x, y: 1.0 - seed_jaro_winkler_similarity(x, y)
        ),
        columns_a,
        columns_b,
    )


def seed_jaccard_column(
    columns_a: ValueColumn, columns_b: ValueColumn
) -> np.ndarray:
    return seed_string_column(seed_jaccard_distance, columns_a, columns_b)


def seed_dice_column(columns_a: ValueColumn, columns_b: ValueColumn) -> np.ndarray:
    return seed_string_column(seed_dice_distance, columns_a, columns_b)
