"""Blocking quality: MultiBlock versus the classic blockers.

The paper executes rules through Silk's MultiBlock engine [19], whose
promise is "no lost recall at a large reduction ratio". This bench
measures exactly that trade-off **across all bundled datasets**: pairs
completeness (recall of the candidate set over the positive reference
links) and reduction ratio (fraction of the Cartesian product pruned),
for the full index, token blocking on all properties, and the
rule-aware MultiBlock of :mod:`repro.matching.multiblock`.

It is also the gate behind the engine's blocker default:
``MatchingEngine`` resolves ``blocker=None`` to ``MultiBlocker``
whenever :func:`repro.matching.multiblock.multiblock_supports` accepts
the rule, and this bench asserts that on every dataset where that
happens the MultiBlock execution generates exactly the full-index
links.
"""

from __future__ import annotations

import random

from repro.core.genlink import GenLink, GenLinkConfig
from repro.data.splits import train_validation_split
from repro.datasets import DATASET_NAMES, load_dataset
from repro.experiments.scale import current_scale
from repro.experiments.tables import format_table
from repro.matching.blocking import FullIndexBlocker, TokenBlocker
from repro.matching.multiblock import (
    MultiBlocker,
    blocking_quality,
    multiblock_supports,
)

from benchmarks._util import emit, strict_assertions

_DATASETS = DATASET_NAMES


def _quality_row(name: str, seed: int) -> dict:
    scale = current_scale()
    dataset = load_dataset(
        name, seed=seed, scale=scale.effective_dataset_scale(0)
    )
    rng = random.Random(seed)
    train, __ = train_validation_split(dataset.links, rng)
    config = GenLinkConfig(
        population_size=max(30, scale.population_size // 2),
        max_iterations=max(5, scale.max_iterations // 2),
    )
    result = GenLink(config).learn(
        dataset.source_a, dataset.source_b, train, rng=rng
    )
    rule = result.best_rule

    matches = list(dataset.links.positive)
    blockers = {
        "full": FullIndexBlocker(),
        "token": TokenBlocker(
            dataset.source_a.property_names(),
            dataset.source_b.property_names(),
        ),
        "multiblock": MultiBlocker(rule),
    }
    qualities = {
        label: blocking_quality(
            blocker, dataset.source_a, dataset.source_b, matches
        )
        for label, blocker in blockers.items()
    }

    # MultiBlock's actual claim [19]: executing the rule over the
    # blocked candidates generates exactly the links the full index
    # generates. (Absolute pairs-completeness against the reference
    # links is reported for context but bounded by the rule itself —
    # positives whose compared properties are missing score 0 under
    # every blocker.)
    from repro.matching.engine import MatchingEngine, default_blocker

    full_links = {
        link.as_pair()
        for link in MatchingEngine(blocker=blockers["full"]).execute(
            rule, dataset.source_a, dataset.source_b
        )
    }
    multiblock_links = {
        link.as_pair()
        for link in MatchingEngine(blocker=blockers["multiblock"]).execute(
            rule, dataset.source_a, dataset.source_b
        )
    }
    return {
        "dataset": name,
        "qualities": qualities,
        "full_links": full_links,
        "multiblock_links": multiblock_links,
        "auto_is_multiblock": isinstance(default_blocker(rule), MultiBlocker),
        "supported": multiblock_supports(rule),
    }


def test_multiblock_blocking_quality(benchmark, results_dir):
    rows_data = benchmark.pedantic(
        lambda: [_quality_row(name, seed=23) for name in _DATASETS],
        rounds=1,
        iterations=1,
    )
    rows = []
    for row in rows_data:
        for label, quality in row["qualities"].items():
            rows.append(
                [
                    row["dataset"],
                    label,
                    quality.candidate_pairs,
                    f"{quality.pairs_completeness:.3f}",
                    f"{quality.reduction_ratio:.3f}",
                ]
            )
        rows.append(
            [
                row["dataset"],
                "links",
                len(row["multiblock_links"]),
                "= full" if row["multiblock_links"] == row["full_links"] else "LOST",
                "",
            ]
        )
    text = format_table(
        ["Dataset", "Blocker", "Candidates", "Completeness", "Reduction"],
        rows,
        title="Blocking quality (pairs completeness vs reduction ratio)",
    )
    emit(results_dir, "multiblock", text)
    if not strict_assertions():
        return

    for row in rows_data:
        qualities = row["qualities"]
        # The full index is complete by construction.
        assert qualities["full"].pairs_completeness == 1.0
        # The MultiBlock guarantee: no recall lost relative to the rule.
        assert row["multiblock_links"] == row["full_links"], row["dataset"]
        assert (
            qualities["multiblock"].reduction_ratio
            >= qualities["full"].reduction_ratio
        )
        # The default-blocker gate: wherever the structure check
        # accepts a learned rule, auto resolution must pick MultiBlock
        # — and the link-set equality above is exactly what makes that
        # default safe.
        assert row["auto_is_multiblock"] == row["supported"], row["dataset"]
    assert any(
        row["qualities"]["multiblock"].reduction_ratio > 0.5 for row in rows_data
    ), "MultiBlock should prune at least half the Cartesian product somewhere"
    assert any(row["supported"] for row in rows_data), (
        "auto selection should engage MultiBlock on at least one "
        "bundled dataset's learned rule"
    )
