"""Supporting micro-benchmarks: distance throughput, batch rule
evaluation and blocking efficiency.

These are classic pytest-benchmark timings (multiple rounds) rather
than table reproductions; they document the performance envelope of
the substrate the GP runs on.
"""

import random

from repro.core.evaluation import PairEvaluator
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.datasets import load_dataset
from repro.distances.levenshtein import levenshtein
from repro.distances.jaro import jaro_winkler_similarity
from repro.matching.blocking import FullIndexBlocker, TokenBlocker


def test_levenshtein_banded_throughput(benchmark):
    rng = random.Random(0)
    words = ["".join(rng.choice("abcdefghij") for _ in range(12)) for _ in range(200)]

    def run():
        total = 0.0
        for i in range(0, len(words) - 1):
            total += levenshtein(words[i], words[i + 1], bound=3)
        return total

    benchmark(run)


def test_jaro_winkler_throughput(benchmark):
    rng = random.Random(0)
    words = ["".join(rng.choice("abcdefghij") for _ in range(12)) for _ in range(200)]

    def run():
        total = 0.0
        for i in range(0, len(words) - 1):
            total += jaro_winkler_similarity(words[i], words[i + 1])
        return total

    benchmark(run)


def _rule() -> LinkageRule:
    return LinkageRule(
        AggregationNode(
            "max",
            (
                ComparisonNode(
                    "levenshtein",
                    2.0,
                    TransformationNode("lowerCase", (PropertyNode("name"),)),
                    TransformationNode("lowerCase", (PropertyNode("name"),)),
                ),
                ComparisonNode(
                    "jaccard",
                    0.7,
                    TransformationNode("tokenize", (PropertyNode("name"),)),
                    TransformationNode("tokenize", (PropertyNode("name"),)),
                ),
            ),
        )
    )


def test_pair_evaluator_cold_cache(benchmark):
    rng = random.Random(1)
    pairs = [
        (
            Entity(f"a{i}", {"name": f"entity number {rng.randint(0, 50)}"}),
            Entity(f"b{i}", {"name": f"entity number {rng.randint(0, 50)}"}),
        )
        for i in range(500)
    ]
    rule = _rule()

    def run():
        evaluator = PairEvaluator(pairs)
        return evaluator.scores(rule.root).sum()

    benchmark(run)


def test_pair_evaluator_warm_cache(benchmark):
    rng = random.Random(1)
    pairs = [
        (
            Entity(f"a{i}", {"name": f"entity number {rng.randint(0, 50)}"}),
            Entity(f"b{i}", {"name": f"entity number {rng.randint(0, 50)}"}),
        )
        for i in range(500)
    ]
    rule = _rule()
    evaluator = PairEvaluator(pairs)
    evaluator.scores(rule.root)

    def run():
        return evaluator.scores(rule.root).sum()

    benchmark(run)


def test_token_blocking_vs_full_index(benchmark):
    dataset = load_dataset("restaurant", seed=4, scale=0.5)
    # Small blocks: frequent tokens ("The", "Street") are dropped.
    blocker = TokenBlocker(["name", "address"], max_block_size=40)

    def run():
        return sum(1 for _ in blocker.candidates(dataset.source_a, dataset.source_b))

    candidates = benchmark(run)
    full = FullIndexBlocker().candidate_count(dataset.source_a, dataset.source_b)
    # Blocking prunes the vast majority of the Cartesian product.
    assert candidates < full * 0.25
