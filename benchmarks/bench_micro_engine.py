"""Supporting micro-benchmarks: distance throughput, batch rule
evaluation, the compiled engine's population-level speedup, and
blocking efficiency.

Most are classic pytest-benchmark timings (multiple rounds);
``test_population_fitness_speedup`` is a ratio assertion comparing the
engine against the frozen seed evaluator (``_seed_evaluator.py``) on
the workload the GP loop actually runs every generation.
"""

import os
import random
import time

# Plain import (no `benchmarks.` prefix) so the file collects under
# both `python -m pytest` from the repo root and `pytest benchmarks/`
# (pytest puts this directory on sys.path via conftest.py).
from _seed_evaluator import SeedPairEvaluator
from _seed_blocking import SeedTokenBlocker, seed_token_index

from repro.core.evaluation import PairEvaluator
from repro.core.fitness import confusion_counts
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.datasets import DATASET_NAMES, load_dataset
from repro.distances.levenshtein import levenshtein
from repro.distances.jaro import jaro_winkler_similarity
from repro.engine import EngineSession
from repro.matching.blocking import FullIndexBlocker, TokenBlocker


def test_levenshtein_banded_throughput(benchmark):
    rng = random.Random(0)
    words = ["".join(rng.choice("abcdefghij") for _ in range(12)) for _ in range(200)]

    def run():
        total = 0.0
        for i in range(0, len(words) - 1):
            total += levenshtein(words[i], words[i + 1], bound=3)
        return total

    benchmark(run)


def test_jaro_winkler_throughput(benchmark):
    rng = random.Random(0)
    words = ["".join(rng.choice("abcdefghij") for _ in range(12)) for _ in range(200)]

    def run():
        total = 0.0
        for i in range(0, len(words) - 1):
            total += jaro_winkler_similarity(words[i], words[i + 1])
        return total

    benchmark(run)


def _rule() -> LinkageRule:
    return LinkageRule(
        AggregationNode(
            "max",
            (
                ComparisonNode(
                    "levenshtein",
                    2.0,
                    TransformationNode("lowerCase", (PropertyNode("name"),)),
                    TransformationNode("lowerCase", (PropertyNode("name"),)),
                ),
                ComparisonNode(
                    "jaccard",
                    0.7,
                    TransformationNode("tokenize", (PropertyNode("name"),)),
                    TransformationNode("tokenize", (PropertyNode("name"),)),
                ),
            ),
        )
    )


def test_pair_evaluator_cold_cache(benchmark):
    rng = random.Random(1)
    pairs = [
        (
            Entity(f"a{i}", {"name": f"entity number {rng.randint(0, 50)}"}),
            Entity(f"b{i}", {"name": f"entity number {rng.randint(0, 50)}"}),
        )
        for i in range(500)
    ]
    rule = _rule()

    def run():
        evaluator = PairEvaluator(pairs)
        return evaluator.scores(rule.root).sum()

    benchmark(run)


def test_pair_evaluator_warm_cache(benchmark):
    rng = random.Random(1)
    pairs = [
        (
            Entity(f"a{i}", {"name": f"entity number {rng.randint(0, 50)}"}),
            Entity(f"b{i}", {"name": f"entity number {rng.randint(0, 50)}"}),
        )
        for i in range(500)
    ]
    rule = _rule()
    evaluator = PairEvaluator(pairs)
    evaluator.scores(rule.root)

    def run():
        return evaluator.scores(rule.root).sum()

    benchmark(run)


def _gp_population(rng: random.Random, size: int) -> list[LinkageRule]:
    """A population shaped like a mid-run GP generation: rules share
    (metric, source, target) genetic material via crossover but carry
    individually mutated thresholds and weights."""
    genes = (
        (
            "levenshtein",
            (0.5, 3.0),
            TransformationNode("lowerCase", (PropertyNode("name"),)),
            TransformationNode("lowerCase", (PropertyNode("name"),)),
        ),
        (
            "jaccard",
            (0.3, 0.9),
            TransformationNode("tokenize", (PropertyNode("name"),)),
            TransformationNode("tokenize", (PropertyNode("name"),)),
        ),
        (
            "jaroWinkler",
            (0.1, 0.4),
            TransformationNode("lowerCase", (PropertyNode("city"),)),
            TransformationNode("lowerCase", (PropertyNode("city"),)),
        ),
        (
            "numeric",
            (1.0, 10.0),
            PropertyNode("year"),
            PropertyNode("year"),
        ),
    )

    def random_comparison():
        metric, (low, high), source, target = genes[rng.randrange(len(genes))]
        return ComparisonNode(
            metric,
            round(rng.uniform(low, high), 3),
            source,
            target,
            weight=rng.randint(1, 4),
        )

    population = []
    for _ in range(size):
        comparisons = tuple(
            random_comparison() for _ in range(rng.randint(1, 3))
        )
        if len(comparisons) == 1:
            population.append(LinkageRule(comparisons[0]))
        else:
            function = rng.choice(("min", "max", "wmean"))
            population.append(
                LinkageRule(AggregationNode(function, comparisons))
            )
    return population


def _fitness_pairs(rng: random.Random, count: int):
    pairs = []
    labels = []
    for i in range(count):
        match = rng.random() < 0.3
        name = f"restaurant {rng.randint(0, 80)} on main"
        other = name if match else f"diner {rng.randint(0, 80)} off side"
        pairs.append(
            (
                Entity(
                    f"a{i}",
                    {
                        "name": name,
                        "city": rng.choice(("Berlin", "Hamburg", "Munich")),
                        "year": str(1980 + rng.randint(0, 40)),
                    },
                ),
                Entity(
                    f"b{i}",
                    {
                        "name": other,
                        "city": rng.choice(("berlin", "hamburg", "munich")),
                        "year": str(1980 + rng.randint(0, 40)),
                    },
                ),
            )
        )
        labels.append(match)
    return pairs, labels


def test_population_fitness_speedup():
    """Population-level fitness evaluation through the compiled engine
    must be at least 3x faster than the seed per-pair evaluator path.

    The seed caches score vectors per (metric, threshold, source,
    target), so the threshold mutations the GP applies every generation
    force full per-pair re-evaluation; the engine shares one distance
    column per (metric, source, target) and re-thresholds it as a numpy
    expression.
    """
    rng = random.Random(7)
    pairs, labels = _fitness_pairs(rng, 400)
    population = _gp_population(rng, 60)

    def fitness_of(scores_fn):
        return [
            confusion_counts(scores_fn(rule.root) >= 0.5, labels).mcc()
            for rule in population
        ]

    seed_evaluator = SeedPairEvaluator(pairs)
    start = time.perf_counter()
    seed_fitness = fitness_of(seed_evaluator.scores)
    seed_seconds = time.perf_counter() - start

    context = EngineSession().context(pairs)
    start = time.perf_counter()
    context.population_scores([rule.root for rule in population])
    engine_fitness = fitness_of(context.scores)
    engine_seconds = time.perf_counter() - start

    assert seed_fitness == engine_fitness  # bit-identical scores
    speedup = seed_seconds / engine_seconds
    print(
        f"\npopulation fitness: seed {seed_seconds * 1000:.1f} ms, "
        f"engine {engine_seconds * 1000:.1f} ms, speedup {speedup:.1f}x"
    )
    if os.environ.get("CI"):
        # Shared CI runners make ms-scale wall-clock ratios flaky; the
        # smoke run keeps the bit-identity assertion above and reports
        # the ratio without gating the build on it.
        return
    assert speedup >= 3.0, (
        f"engine speedup {speedup:.2f}x below the required 3x "
        f"(seed {seed_seconds:.3f}s vs engine {engine_seconds:.3f}s)"
    )


def _distance_columns(rng: random.Random, count: int, kind: str):
    """Per-pair value-set columns shaped like engine workloads: few
    unique entities (shared tuple objects) fanned out over many pairs."""
    if kind == "numeric":
        unique = [(f"{rng.uniform(0, 500):.2f}",) for _ in range(200)]
    elif kind == "date":
        unique = [
            (f"{rng.randint(1950, 2020)}-{rng.randint(1, 12):02d}-"
             f"{rng.randint(1, 28):02d}",)
            for _ in range(200)
        ]
    else:
        raise ValueError(kind)
    columns_a = [unique[rng.randrange(len(unique))] for _ in range(count)]
    columns_b = [unique[rng.randrange(len(unique))] for _ in range(count)]
    return columns_a, columns_b


def test_batch_kernel_speedup():
    """`evaluate_column` must be at least 2x faster than the per-pair
    `evaluate` loop on numeric and date columns (the ISSUE 2 bar; in
    practice the parse memoisation plus the vectorized singleton path
    lands far above it), while staying bit-identical."""
    from repro.distances.registry import default_registry

    registry = default_registry()
    rng = random.Random(13)
    for kind in ("numeric", "date"):
        measure = registry.get(kind)
        columns_a, columns_b = _distance_columns(rng, 4000, kind)

        start = time.perf_counter()
        loop = [
            measure.evaluate(a, b) for a, b in zip(columns_a, columns_b)
        ]
        loop_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batch = measure.evaluate_column(columns_a, columns_b)
        batch_seconds = time.perf_counter() - start

        assert batch.tolist() == loop  # bit-identical distances
        speedup = loop_seconds / batch_seconds
        print(
            f"\n{kind} batch kernel: loop {loop_seconds * 1000:.1f} ms, "
            f"batch {batch_seconds * 1000:.1f} ms, speedup {speedup:.1f}x"
        )
        if os.environ.get("CI"):
            # Same policy as the population benchmark: shared runners
            # make wall-clock ratios flaky; CI keeps the bit-identity
            # assertion and reports the ratio.
            continue
        assert speedup >= 2.0, (
            f"{kind} batch kernel speedup {speedup:.2f}x below the "
            f"required 2x (loop {loop_seconds:.3f}s vs batch "
            f"{batch_seconds:.3f}s)"
        )


def _string_columns(rng: random.Random, count: int, kind: str):
    """String columns shaped like engine workloads: unique value tuples
    (one object per entity) fanned out over many pairs, with enough
    near-duplicates to exercise match windows and the levenshtein band."""
    alphabet = "abcdefghijklmnop"

    def word() -> str:
        return "".join(rng.choice(alphabet) for _ in range(rng.randint(8, 14)))

    def mutate(w: str) -> str:
        chars = list(w)
        for _ in range(rng.randint(1, 3)):
            pos = rng.randrange(len(chars))
            chars[pos] = rng.choice(alphabet)
        return "".join(chars)

    if kind == "tokens":
        vocabulary = [word() for _ in range(60)]
        unique = [
            tuple(rng.sample(vocabulary, rng.randint(3, 8))) for _ in range(400)
        ]
    else:
        base = [word() for _ in range(200)]
        unique = [
            (mutate(rng.choice(base)) if rng.random() < 0.5 else word(),)
            for _ in range(400)
        ]
    columns_a = [unique[rng.randrange(len(unique))] for _ in range(count)]
    columns_b = [unique[rng.randrange(len(unique))] for _ in range(count)]
    return columns_a, columns_b


def test_string_kernel_speedup():
    """The vectorized string kernels must be at least 2x faster than the
    frozen per-pair fallback (``_seed_string_kernels.py``) for each
    measure family — levenshtein, jaro and jaccard/token — while staying
    bit-identical to the live scalar oracle. The frozen levenshtein kept
    the seed's loose out-of-range contract, so bit-identity is asserted
    against the live ``evaluate`` loop; the frozen path is timing-only.
    """
    from _seed_string_kernels import (
        seed_jaccard_column,
        seed_jaro_winkler_column,
        seed_levenshtein_column,
    )
    from repro.distances.registry import default_registry

    registry = default_registry()
    rng = random.Random(29)
    workloads = (
        ("levenshtein", "words", 6000, seed_levenshtein_column),
        ("jaroWinkler", "words", 20000, seed_jaro_winkler_column),
        ("jaccard", "tokens", 20000, seed_jaccard_column),
    )
    def best_of(trials, fn):
        times = []
        for _ in range(trials):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    for name, kind, count, seed_column in workloads:
        measure = registry.get(name)
        columns_a, columns_b = _string_columns(rng, count, kind)

        seed_seconds = best_of(3, lambda: seed_column(columns_a, columns_b))
        batch_seconds = best_of(
            3, lambda: measure.evaluate_column(columns_a, columns_b)
        )
        batch = measure.evaluate_column(columns_a, columns_b)

        # Bit-identical to the live per-pair oracle (the contract every
        # backend honours), checked over a deterministic row sample to
        # keep the oracle loop out of the timed region.
        sample = range(0, count, 7)
        expected = [
            measure.evaluate(columns_a[i], columns_b[i]) for i in sample
        ]
        assert [batch[i] for i in sample] == expected

        speedup = seed_seconds / batch_seconds
        print(
            f"\n{name} string kernel: seed {seed_seconds * 1000:.1f} ms, "
            f"batch {batch_seconds * 1000:.1f} ms, speedup {speedup:.1f}x"
        )
        if os.environ.get("CI"):
            # Same policy as the other ratio gates: shared runners make
            # wall-clock ratios flaky; CI keeps the bit-identity
            # assertion and reports the ratio.
            continue
        assert speedup >= 2.0, (
            f"{name} string kernel speedup {speedup:.2f}x below the "
            f"required 2x (seed {seed_seconds:.3f}s vs batch "
            f"{batch_seconds:.3f}s)"
        )


def test_population_fitness_multiworker():
    """Measured (not asserted) multi-worker speedup on population
    fitness evaluation: thread workers must stay bit-identical to
    serial; the wall-clock ratio is reported because it depends on the
    machine (1-core CI boxes and the GIL bound it near 1x)."""
    rng = random.Random(7)
    pairs, _labels = _fitness_pairs(rng, 400)
    population = _gp_population(rng, 60)
    roots = [rule.root for rule in population]

    start = time.perf_counter()
    serial_vectors = (
        EngineSession(executor=0).context(pairs).population_scores(roots)
    )
    serial_seconds = time.perf_counter() - start

    workers = min(4, max(2, os.cpu_count() or 2))
    with EngineSession(executor=workers) as session:
        start = time.perf_counter()
        parallel_vectors = session.context(pairs).population_scores(roots)
        parallel_seconds = time.perf_counter() - start

    for serial, parallel in zip(serial_vectors, parallel_vectors):
        assert serial.tobytes() == parallel.tobytes()
    print(
        f"\npopulation fitness: serial {serial_seconds * 1000:.1f} ms, "
        f"{workers} thread workers {parallel_seconds * 1000:.1f} ms, "
        f"speedup {serial_seconds / parallel_seconds:.2f}x "
        f"({os.cpu_count()} cpus)"
    )


def test_persistent_store_warm_rerun():
    """The persistent column store must let a warm rerun skip >= 90% of
    distance-column builds (it skips all of them: every store lookup
    hits) with bit-identical scores; the wall-clock ratio is reported
    but not asserted — mmap loads vs recompute depends on the metric
    mix and the disk."""
    import tempfile

    rng = random.Random(7)
    pairs, _labels = _fitness_pairs(rng, 400)
    population = _gp_population(rng, 60)
    roots = [rule.root for rule in population]

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_session = EngineSession(store=cache_dir)
        start = time.perf_counter()
        cold_vectors = cold_session.context(pairs).population_scores(roots)
        cold_seconds = time.perf_counter() - start
        cold_store = cold_session.stats().store
        assert cold_store.writes == cold_store.misses > 0

        warm_session = EngineSession(store=cache_dir)
        start = time.perf_counter()
        warm_vectors = warm_session.context(pairs).population_scores(roots)
        warm_seconds = time.perf_counter() - start
        warm_store = warm_session.stats().store

    for cold, warm in zip(cold_vectors, warm_vectors):
        assert cold.tobytes() == warm.tobytes()
    assert warm_store.lookups == cold_store.lookups
    assert warm_store.hits / warm_store.lookups >= 0.9
    print(
        f"\npersistent store: cold {cold_seconds * 1000:.1f} ms "
        f"({cold_store.writes} columns built), warm "
        f"{warm_seconds * 1000:.1f} ms ({warm_store.hits} loaded, "
        f"{warm_store.misses} rebuilt), speedup "
        f"{cold_seconds / warm_seconds:.1f}x"
    )


def test_engine_population_eval(benchmark):
    """pytest-benchmark timing of the engine population path alone."""
    rng = random.Random(7)
    pairs, _labels = _fitness_pairs(rng, 400)
    population = _gp_population(rng, 60)
    roots = [rule.root for rule in population]

    def run():
        context = EngineSession().context(pairs)
        return sum(vector.sum() for vector in context.population_scores(roots))

    benchmark(run)


def test_blocking_index_speedup():
    """Blocking-index construction must be at least 2x faster than the
    frozen per-entity seed baseline on a bundled dataset, measured over
    the profile the engine actually runs — a workload with repeated
    executions (learning then matching, re-executed rules, quality
    reports), where the seed rebuilt its index on every call while the
    new subsystem builds once (bulk-tokenised in C) and serves the
    rest from the session index memo. The candidate sets must be
    identical — the speedup never buys a different result."""
    dataset = load_dataset("cora", seed=4, scale=0.5)
    source_a, source_b = dataset.source_a, dataset.source_b
    properties = source_b.property_names()

    seed_pairs = {
        (a.uid, b.uid)
        for a, b in SeedTokenBlocker(properties).candidates(source_a, source_b)
    }
    new_pairs = {
        (a.uid, b.uid)
        for a, b in TokenBlocker(properties).candidates(source_a, source_b)
    }
    assert new_pairs == seed_pairs  # identical candidate sets

    runs = 2  # one learning pass + one matching pass, the minimum

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def seed_workload():
        for _ in range(runs):
            seed_token_index(source_b, properties)

    def engine_workload():
        session = EngineSession()
        blocker = TokenBlocker(properties)
        for _ in range(runs):
            blocker.build_index(source_b, session=session)

    # Best-of-3 on both sides: the ratio is what matters and a single
    # noisy trial (GC pause, turbo transition) should not gate it.
    seed_seconds = best_of(3, seed_workload)
    engine_seconds = best_of(3, engine_workload)

    speedup = seed_seconds / engine_seconds
    print(
        f"\nblocking index ({runs}-run workload): seed "
        f"{seed_seconds * 1000:.1f} ms, engine "
        f"{engine_seconds * 1000:.1f} ms, speedup {speedup:.1f}x"
    )
    if os.environ.get("CI"):
        # Same policy as the other ratio benchmarks: shared runners
        # make wall-clock ratios flaky; CI keeps the candidate-set
        # parity assertion and reports the ratio.
        return
    assert speedup >= 2.0, (
        f"blocking-index speedup {speedup:.2f}x below the required 2x "
        f"(seed {seed_seconds:.3f}s vs engine {engine_seconds:.3f}s)"
    )


def test_blocking_persistent_index_warm_rerun():
    """A warm rerun over unchanged sources must skip >= 90% of blocking
    index builds: every index the cold run persisted loads from the
    store's index tier (reported per run in ``MatchStats.store``), and
    the generated links are byte-identical."""
    import tempfile

    from repro.matching.engine import MatchingEngine

    dataset = load_dataset("restaurant", seed=4, scale=0.25)
    rule = _rule()

    with tempfile.TemporaryDirectory() as cache_dir:

        def run():
            engine = MatchingEngine(cache_dir=cache_dir)
            try:
                links = engine.execute(
                    rule, dataset.source_a, dataset.source_b
                )
            finally:
                engine.close()
            return links, engine.last_run_stats().store

        cold_links, cold_store = run()
        assert cold_store.index_misses > 0
        assert cold_store.index_writes == cold_store.index_misses

        warm_links, warm_store = run()

    assert warm_links == cold_links
    assert warm_store.index_lookups == cold_store.index_lookups
    assert warm_store.index_hit_rate >= 0.9  # skips >= 90% of builds
    assert warm_store.index_misses == 0  # in fact: all of them
    print(
        f"\npersistent index tier: cold built {cold_store.index_writes} "
        f"index(es), warm loaded {warm_store.index_hits}, rebuilt "
        f"{warm_store.index_misses}"
    )


def _probe_rule(source_a, source_b):
    """A two-comparison rule over the sources' leading properties —
    both comparisons indexable, so MultiBlock always engages."""
    props_a = source_a.property_names()
    props_b = source_b.property_names()
    second_a = props_a[1] if len(props_a) > 1 else props_a[0]
    second_b = props_b[1] if len(props_b) > 1 else props_b[0]
    return LinkageRule(
        AggregationNode(
            "max",
            (
                ComparisonNode(
                    "jaccard",
                    0.5,
                    TransformationNode("tokenize", (PropertyNode(props_a[0]),)),
                    TransformationNode("tokenize", (PropertyNode(props_b[0]),)),
                ),
                ComparisonNode(
                    "equality",
                    0.0,
                    TransformationNode("lowerCase", (PropertyNode(second_a),)),
                    TransformationNode("lowerCase", (PropertyNode(second_b),)),
                ),
            ),
        )
    )


def _snb_key(source_a, source_b) -> str:
    names_b = set(source_b.property_names())
    for name in source_a.property_names():
        if name in names_b:
            return name
    return source_a.property_names()[0]


class _FrozenCandidates(FullIndexBlocker):
    """Replays a fixed candidate-pair list (the frozen-probe reference
    path for link-parity checks)."""

    def __init__(self, pairs):
        self._pairs = list(pairs)

    def candidates(self, source_a, source_b):
        return iter(self._pairs)


def test_blocking_probe_speedup():
    """Batch probing must beat the frozen per-entity probe loops by
    >=2x on the engine's repeated-execution profile, and must never
    buy a different result: candidate sets and generated links stay
    byte-identical across all six bundled datasets x blockers
    {multiblock, token, sorted-neighbourhood} x workers
    {0, 2, process:2}.

    The timed workload is the probe side proper — per-entity partner
    computation over prebuilt indexes, two sweeps (one learning + one
    matching pass, the minimum), including the batch path's one-off
    code-view derivation — because pair materialisation downstream of
    probing is shared by both implementations. Links are compared via
    ``MatchingEngine.execute`` (deterministically sorted), with the
    reference engine replaying the frozen probes' candidate pairs.
    """
    from _seed_blocking import (
        seed_multiblock_probe,
        seed_multiblock_probe_kernel,
        seed_snb_pairs,
        seed_snb_probe_kernel,
        seed_token_probe,
        seed_token_probe_kernel,
    )

    from repro.experiments.scale import current_scale
    from repro.engine.executor import ProcessExecutor, ThreadExecutor
    from repro.matching.blocking import (
        _PROBE_CHUNK,
        SortedNeighbourhoodBlocker,
    )
    from repro.matching.engine import MatchingEngine
    from repro.matching.multiblock import MultiBlocker

    # ---- speedup: 2-run probe workload over the heaviest bundled
    # probe mass (cora at half scale, as in the index-build bench).
    dataset = load_dataset("cora", seed=4, scale=0.5)
    source_a, source_b = dataset.source_a, dataset.source_b
    entities = source_a.entities()
    props = source_b.property_names()
    rule = _probe_rule(source_a, source_b)

    token_blocker = TokenBlocker(props)
    token_index = token_blocker.build_index(source_b)
    snb = SortedNeighbourhoodBlocker(_snb_key(source_a, source_b), window=7)
    snb_index_a = snb.build_index(source_a)
    snb_index_b = snb.build_index(source_b)
    multi = MultiBlocker(rule)
    multi_indexes = multi.build_index(source_b)
    seed_session = EngineSession()
    all_uids = frozenset(entity.uid for entity in source_b)

    runs = 2  # one learning pass + one matching pass, the minimum

    def seed_workload():
        for _ in range(runs):
            seed_token_probe_kernel(source_a, token_index, props)
            seed_snb_probe_kernel(
                source_a, source_b, snb_index_a, snb_index_b, 7
            )
            seed_multiblock_probe_kernel(
                rule, source_a, multi_indexes, all_uids, seed_session
            )

    def batch_workload():
        session = EngineSession()
        for _ in range(runs):
            for blocker in (token_blocker, snb, multi):
                probe_index = blocker.probe_index(
                    source_a, source_b, session=session
                )
                memo: dict = {}
                for start in range(0, len(entities), _PROBE_CHUNK):
                    chunk = entities[start : start + _PROBE_CHUNK]
                    if blocker is snb:
                        blocker.probe_batch(chunk, probe_index, session)
                    else:
                        blocker.probe_batch(
                            chunk, probe_index, session, memo=memo
                        )

    # Per-entity probe parity before timing anything: the batch results
    # must be exactly the frozen kernels' candidates.
    token_probe_index = token_blocker.probe_index(source_a, source_b)
    batch_token = token_blocker.probe_batch(entities, token_probe_index)
    for (uid_a, partners), codes in zip(
        seed_token_probe_kernel(source_a, token_index, props), batch_token
    ):
        assert set(partners) == set(
            token_blocker.probe_uids(token_probe_index, codes)
        ), uid_a
    multi_probe_index = multi.probe_index(source_a, source_b)
    batch_multi = multi.probe_batch(entities, multi_probe_index)
    for (uid_a, partners), codes in zip(
        seed_multiblock_probe_kernel(
            rule, source_a, multi_indexes, all_uids, seed_session
        ),
        batch_multi,
    ):
        assert tuple(partners) == multi.probe_uids(
            multi_probe_index, codes
        ), uid_a

    def best_of(trials, fn):
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    seed_seconds = best_of(3, seed_workload)
    batch_seconds = best_of(3, batch_workload)
    speedup = seed_seconds / batch_seconds
    print(
        f"\nblocking probe ({runs}-run workload, 3 blockers): seed "
        f"{seed_seconds * 1000:.1f} ms, batch {batch_seconds * 1000:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )

    # ---- parity: candidate sets and links across every bundled
    # dataset, blocker and worker strategy.
    scale = current_scale().effective_dataset_scale(0)
    thread_executor = ThreadExecutor(2)
    process_executor = ProcessExecutor(2)
    try:
        for name in DATASET_NAMES:
            bundle = load_dataset(name, seed=23, scale=scale)
            a, b = bundle.source_a, bundle.source_b
            bundle_rule = _probe_rule(a, b)
            window = 8
            key = _snb_key(a, b)
            reference_session = EngineSession()
            multi_reference = MultiBlocker(bundle_rule)

            def seed_pairs_of(label):
                if label == "token":
                    blocker = TokenBlocker(
                        a.property_names(), b.property_names()
                    )
                    return list(
                        seed_token_probe(
                            a, b, blocker.build_index(b), a.property_names()
                        )
                    )
                if label == "snb":
                    blocker = SortedNeighbourhoodBlocker(key, window=window)
                    return list(
                        seed_snb_pairs(
                            a,
                            b,
                            blocker.build_index(a),
                            blocker.build_index(b),
                            window,
                        )
                    )
                return list(
                    seed_multiblock_probe(
                        bundle_rule,
                        a,
                        b,
                        multi_reference.build_index(b),
                        reference_session,
                    )
                )

            makers = {
                "multiblock": lambda: MultiBlocker(bundle_rule),
                "token": lambda: TokenBlocker(
                    a.property_names(), b.property_names()
                ),
                "snb": lambda: SortedNeighbourhoodBlocker(key, window=window),
            }
            for label, make in makers.items():
                seed_pairs = seed_pairs_of(label)
                seed_set = {(x.uid, y.uid) for x, y in seed_pairs}
                new_set = {(x.uid, y.uid) for x, y in make().candidates(a, b)}
                assert new_set == seed_set, (name, label)

                reference_links = MatchingEngine(
                    blocker=_FrozenCandidates(seed_pairs)
                ).execute(bundle_rule, a, b)
                for workers_label, workers in (
                    ("0", 0),
                    ("2", thread_executor),
                    ("process:2", process_executor),
                ):
                    engine = MatchingEngine(blocker=make(), workers=workers)
                    links = engine.execute(bundle_rule, a, b)
                    assert links == reference_links, (
                        name,
                        label,
                        workers_label,
                    )
    finally:
        thread_executor.close()
        process_executor.close()

    if os.environ.get("CI"):
        # Same policy as the other ratio benchmarks: shared runners
        # make wall-clock ratios flaky; CI keeps the parity assertions
        # and reports the ratio.
        return
    assert speedup >= 2.0, (
        f"blocking probe speedup {speedup:.2f}x below the required 2x "
        f"(seed {seed_seconds:.3f}s vs batch {batch_seconds:.3f}s)"
    )


def test_worker_window_depth():
    """Measured (not asserted): does a deeper in-flight window hide
    shard-size variance on skewed blocks? Scores a workload whose
    shards alternate between cheap (short equal strings) and expensive
    (long distinct strings) through 2 thread workers at window depths
    1x/2x/4x the worker count; links must be byte-identical at every
    depth, the wall-clocks are reported for tuning."""
    from repro.data.source import DataSource
    from repro.matching.blocking import FullIndexBlocker
    from repro.matching.engine import MatchingEngine

    rng = random.Random(11)
    entities_a = []
    entities_b = []
    for i in range(120):
        if (i // 20) % 2:
            # Expensive region: long, mostly distinct names.
            name = " ".join(
                "".join(rng.choice("abcdefghij") for _ in range(12))
                for _ in range(6)
            )
            other = name[:-1] + rng.choice("abcdefghij")
        else:
            name = f"item {i % 5}"
            other = name
        entities_a.append(Entity(f"a{i}", {"name": name}))
        entities_b.append(Entity(f"b{i}", {"name": other}))
    source_a = DataSource("A", entities_a)
    source_b = DataSource("B", entities_b)
    rule = _rule()

    timings = {}
    reference = None
    for depth in (1, 2, 4):
        workers = 2
        engine = MatchingEngine(
            blocker=FullIndexBlocker(),
            batch_size=256,
            workers=workers,
            window=depth * workers,
        )
        try:
            start = time.perf_counter()
            links = engine.execute(rule, source_a, source_b)
            timings[depth] = time.perf_counter() - start
        finally:
            engine.close()
        if reference is None:
            reference = links
        else:
            assert links == reference  # window depth never changes output
    report = ", ".join(
        f"{depth}x={seconds * 1000:.1f}ms" for depth, seconds in timings.items()
    )
    print(f"\nwindow depth over 2 workers (skewed shards): {report}")


def test_token_blocking_vs_full_index(benchmark):
    dataset = load_dataset("restaurant", seed=4, scale=0.5)
    # Small blocks: frequent tokens ("The", "Street") are dropped.
    blocker = TokenBlocker(["name", "address"], max_block_size=40)

    def run():
        return sum(1 for _ in blocker.candidates(dataset.source_a, dataset.source_b))

    candidates = benchmark(run)
    full = FullIndexBlocker().candidate_count(dataset.source_a, dataset.source_b)
    # Blocking prunes the vast majority of the Cartesian product.
    assert candidates < full * 0.25
