"""Incremental matching: cold execution versus delta re-scoring.

The incremental path's promise is twofold: ``link_diff`` after a small
source mutation must (a) produce links **byte-identical** to a cold
re-run over rebuilt sources — asserted at every scale — and (b) do
asymptotically less work: patch the persisted indexes forward instead
of rebuilding them and re-score only the affected candidate pairs,
reusing everything else. At bench/paper scale this file asserts the
performance half on two datasets (one dedup, one two-source): the
delta run after a ~1% mutation is at least 5x faster than the cold
run, at least 90% of its blocking indexes arrive by patching rather
than rebuilding, and its distance-column builds stay within 10% of the
cold run's.

The timed run is the *second* delta run: the first one pays a one-off
cost the steady state never sees again (the reverse comparison index
that bounds the affected set is built cold the first time, patched
forward afterwards).
"""

from __future__ import annotations

import random
import tempfile
import time

from repro.datasets import load_dataset
from repro.experiments.scale import current_scale
from repro.matching.blocking import TokenBlocker
from repro.matching.engine import MatchingEngine
from repro.matching.incremental import (
    DATASET_RULE_PROPERTIES,
    dataset_rule,
    random_source_delta,
    rebuilt,
)

from benchmarks._util import emit, strict_assertions

import pytest

#: One deduplication and one two-source workload — the two densest
#: token-blocking candidate streams among the bundled datasets, so the
#: cold run builds enough shards for the reuse ratios to be meaningful.
_DATASETS = ("cora", "nyt")


def _mutate(source, rng):
    """~1% of the source mutated: half revisions/inserts, half deletes
    (at least one of each)."""
    budget = max(2, round(0.01 * len(source)))
    deletes = max(1, budget // 2)
    upserts = max(1, budget - deletes)
    return random_source_delta(source, rng, upserts=upserts, deletes=deletes)


def _cold_links(name, rule, source_a, source_b, dedup):
    cold_a = rebuilt(source_a)
    cold_b = cold_a if dedup else rebuilt(source_b)
    prop_a, prop_b = DATASET_RULE_PROPERTIES[name]
    verifier = MatchingEngine(
        blocker=TokenBlocker([prop_a], [prop_b]), batch_size=512
    )
    try:
        return [
            (link.uid_a, link.uid_b, link.score)
            for link in verifier.execute(rule, cold_a, cold_b)
        ]
    finally:
        verifier.close()


@pytest.mark.parametrize("name", _DATASETS)
def test_incremental_delta_speedup(benchmark, results_dir, name):
    scale = current_scale()
    dataset = load_dataset(
        name, seed=0, scale=scale.effective_dataset_scale(0)
    )
    rule = dataset_rule(name)
    source_a, source_b = dataset.source_a, dataset.source_b
    dedup = source_a is source_b
    prop_a, prop_b = DATASET_RULE_PROPERTIES[name]
    rng = random.Random(name)

    with tempfile.TemporaryDirectory() as cache_dir:
        engine = MatchingEngine(
            blocker=TokenBlocker([prop_a], [prop_b]),
            cache_dir=cache_dir,
            batch_size=512,
        )
        try:
            started = time.perf_counter()
            previous = list(engine.execute(rule, source_a, source_b))
            cold_seconds = time.perf_counter() - started
            cold_stats = engine.last_run_stats()

            # First delta run: absorbs the one-off reverse-index build.
            deltas_a = [_mutate(source_a, rng)]
            deltas_b = deltas_a if dedup else [_mutate(source_b, rng)]
            warmup = engine.link_diff(
                rule, source_a, source_b, previous,
                deltas_a=deltas_a, deltas_b=deltas_b,
            )
            links = [
                (l.uid_a, l.uid_b, l.score) for l in warmup.links
            ]
            assert links == _cold_links(name, rule, source_a, source_b, dedup)

            # Second delta run: the steady state this bench times.
            deltas_a = [_mutate(source_a, rng)]
            deltas_b = deltas_a if dedup else [_mutate(source_b, rng)]
            timings: list[float] = []

            def delta_run():
                started = time.perf_counter()
                diff = engine.link_diff(
                    rule, source_a, source_b, list(warmup.links),
                    deltas_a=deltas_a, deltas_b=deltas_b,
                )
                timings.append(time.perf_counter() - started)
                return diff

            diff = benchmark.pedantic(delta_run, rounds=1, iterations=1)
            delta_seconds = timings[0]
            links = [(l.uid_a, l.uid_b, l.score) for l in diff.links]
            assert links == _cold_links(name, rule, source_a, source_b, dedup)
        finally:
            engine.close()

    stats = diff.stats
    assert stats is not None and stats.store is not None
    assert cold_stats is not None and cold_stats.store is not None
    patch_total = stats.index_patches + stats.index_builds
    patch_ratio = stats.index_patches / patch_total if patch_total else 1.0
    column_ratio = (
        stats.store.misses / cold_stats.store.misses
        if cold_stats.store.misses
        else 0.0
    )
    speedup = cold_seconds / delta_seconds if delta_seconds > 0 else float("inf")

    text = "\n".join(
        [
            f"{name}: cold {cold_seconds:.3f}s ({cold_stats.pairs} pairs, "
            f"{cold_stats.store.misses} column builds)",
            f"{name}: delta {delta_seconds:.3f}s ({diff.rescored_pairs} "
            f"pairs re-scored, {diff.kept_links} links carried, "
            f"{stats.store.misses} column builds)",
            f"{name}: speedup {speedup:.1f}x, index patch ratio "
            f"{patch_ratio:.2f}, column build ratio {column_ratio:.2f}",
        ]
    )
    emit(results_dir, f"incremental_{name}", text)

    if not strict_assertions():
        return
    assert speedup >= 5.0, (name, speedup)
    assert patch_ratio >= 0.9, (name, stats.index_patches, stats.index_builds)
    assert column_ratio <= 0.1, (
        name, stats.store.misses, cold_stats.store.misses,
    )
