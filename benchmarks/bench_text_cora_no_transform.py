"""In-text ablation (Section 6.2): Cora without transformations.

The paper re-runs GenLink on Cora with transformations disabled and
reports the F-measure dropping from 0.969/0.966 to 0.912/0.905 —
approximately the Carvalho et al. numbers — confirming that the win on
Cora comes from the transformations.
"""

from repro.experiments.drivers import cora_transform_ablation

from benchmarks._util import strict_assertions, emit, learning_curve_table


def test_cora_without_transformations(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: cora_transform_ablation(seed=16), rounds=1, iterations=1
    )
    sections = [
        learning_curve_table("Cora, full representation", results["full"]),
        learning_curve_table(
            "Cora, transformations disabled",
            results["no_transformations"],
            references={
                "Paper (no transformations)": "train 0.912, validation 0.905",
                "Carvalho et al. (paper)": "train 0.900, validation 0.910",
            },
        ),
    ]
    text = "\n\n".join(sections)
    emit(results_dir, "text_cora_no_transform", text)
    if not strict_assertions():
        return

    full = results["full"].final_row().validation_f_measure.mean
    ablated = results["no_transformations"].final_row().validation_f_measure.mean
    # Shape: disabling transformations costs measurable F1 on Cora.
    assert full > ablated
