"""Table 13: F-measure per linkage rule representation.

Paper values (validation F1 at round 25):

                     Boolean  Linear  Nonlin.  Full
    Cora             0.900    0.896   0.898    0.965
    Restaurant       0.954    0.959   0.951    0.992
    SiderDrugBank    0.931    0.956   0.966    0.970
    NYT              0.714    0.716   0.724    0.916
    LinkedMDB        0.973    0.986   0.987    0.997
    DBpediaDrugBank  0.990    0.981   0.991    0.993

The headline shape to reproduce: the full representation wins on every
dataset, and the gap is largest where the noise structure requires
transformations (Cora, NYT).
"""

from repro.datasets import DATASET_NAMES
from repro.experiments.drivers import representation_comparison
from repro.experiments.tables import format_table

from benchmarks._util import strict_assertions, emit

ORDER = ("boolean", "linear", "nonlinear", "full")


def test_table13_representations(benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: representation_comparison(DATASET_NAMES, seed=13),
        rounds=1,
        iterations=1,
    )
    rows = [
        [name] + [table[name][r].format() for r in ORDER] for name in table
    ]
    text = format_table(
        ["Dataset", "Boolean", "Linear", "Nonlin.", "Full"],
        rows,
        title="Table 13: representations (validation F1 at final iteration)",
    )
    emit(results_dir, "table13_representations", text)
    if not strict_assertions():
        return

    # Shape assertions: the full representation dominates on the
    # transformation-sensitive datasets by a clear margin.
    for name in ("cora", "nyt"):
        full = table[name]["full"].mean
        others = max(table[name][r].mean for r in ("boolean", "linear", "nonlinear"))
        assert full > others, f"full should win on {name}"
    # And it is never substantially worse anywhere else. At bench scale
    # (population 100, 3 runs, 20 % data) the full representation's
    # larger search space under-trains on the smallest dataset
    # (LinkedMDB, 100 links), so the tolerance is wider than at paper
    # scale — see the Table 13 discussion in EXPERIMENTS.md.
    from repro.experiments.scale import current_scale

    tolerance = 0.03 if current_scale().name == "paper" else 0.12
    for name in table:
        full = table[name]["full"].mean
        best = max(table[name][r].mean for r in ORDER)
        assert full >= best - tolerance, f"full fell behind on {name}"
