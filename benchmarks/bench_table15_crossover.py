"""Table 15: subtree crossover vs the specialised operators.

Paper values (validation F1):

    10 iterations        Subtree C.      Our Approach
    Cora                 0.943 (0.015)   0.951 (0.013)
    Restaurant           0.997 (0.004)   0.997 (0.004)
    SiderDrugBank        0.919 (0.013)   0.963 (0.013)
    NYT                  0.814 (0.015)   0.834 (0.016)
    LinkedMDB            0.985 (0.012)   0.991 (0.009)
    DBpediaDrugBank      0.992 (0.002)   0.994 (0.002)

    25 iterations        Subtree C.      Our Approach
    Cora                 0.959 (0.007)   0.967 (0.003)
    ...                  (specialised operators match or win everywhere)
"""

from repro.datasets import DATASET_NAMES
from repro.experiments.drivers import crossover_comparison
from repro.experiments.tables import format_table

from benchmarks._util import strict_assertions, emit


def test_table15_crossover(benchmark, results_dir):
    comparisons = benchmark.pedantic(
        lambda: crossover_comparison(DATASET_NAMES, seed=15),
        rounds=1,
        iterations=1,
    )
    sections = []
    for index in range(2):
        iteration = comparisons[0].iterations[index]
        rows = [
            [
                c.dataset,
                c.subtree[iteration].format(),
                c.specialised[iteration].format(),
            ]
            for c in comparisons
        ]
        sections.append(
            format_table(
                ["Dataset", "Subtree C.", "Our Approach"],
                rows,
                title=f"Table 15: crossover comparison at {iteration} iterations",
            )
        )
    text = "\n\n".join(sections)
    emit(results_dir, "table15_crossover", text)
    if not strict_assertions():
        return

    # Shape: averaged over all datasets, the specialised operators match
    # or beat subtree crossover at the final reported iteration.
    final = comparisons[0].iterations[-1]
    mean_subtree = sum(c.subtree[final].mean for c in comparisons) / len(comparisons)
    mean_ours = sum(c.specialised[final].mean for c in comparisons) / len(comparisons)
    assert mean_ours >= mean_subtree - 0.01
