"""Table 9: GenLink learning curve on SiderDrugBank (OAEI baselines:
ObjectCoref 0.464, RiMOM 0.504 — unsupervised systems, shown as the
paper does, merely as context)."""

from repro.experiments.drivers import learning_curve

from benchmarks._util import strict_assertions, emit, learning_curve_table


def test_table09_sider_drugbank(benchmark, results_dir):
    curve = benchmark.pedantic(
        lambda: learning_curve("sider_drugbank", seed=9), rounds=1, iterations=1
    )
    text = learning_curve_table(
        "Table 9: SiderDrugBank",
        curve,
        references={
            "ObjectCoref (paper)": "F1 0.464",
            "RiMOM (paper)": "F1 0.504",
            "GenLink (paper, iter 50)": "train 0.972 (0.006), validation 0.970 (0.007)",
        },
    )
    emit(results_dir, "table09_sider_drugbank", text)
    final = curve.final_row()
    if not strict_assertions():
        return
    # Shape: supervised GenLink ends far above the unsupervised OAEI
    # systems' ~0.5 and improves over its start.
    assert final.validation_f_measure.mean > 0.9
    assert final.train_f_measure.mean >= curve.rows[0].train_f_measure.mean
