"""Figures 1 and 3-6: the grammar and the crossover operators at work.

Figure 1 specifies the strongly-typed structure of a linkage rule;
Figure 3 illustrates Algorithm 2 finding compatible properties between
two city entities; Figures 4-6 walk one application of the operators,
aggregation and transformation crossovers through concrete rules. This
bench renders our equivalents of all five figures from live objects —
the crossovers run against seeded randomness, so the output shows real
operator behaviour, not drawings.
"""

from __future__ import annotations

import random

from repro.core.compatible import find_compatible_properties
from repro.core.crossover import (
    AggregationCrossover,
    OperatorsCrossover,
    TransformationCrossover,
)
from repro.core.generation import RandomRuleGenerator
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.representation import FULL
from repro.core.rule import LinkageRule
from repro.core.serialization import render_rule
from repro.data.entity import Entity
from repro.data.source import DataSource

from benchmarks._util import emit, strict_assertions

GRAMMAR = """\
Figure 1: structure of a linkage rule (strongly-typed grammar)

    LinkageRule     := SimilarityNode
    SimilarityNode  := Aggregation | Comparison
    Aggregation     := fa(SimilarityNode+)        fa in {min, max, wmean}
    Comparison      := fd(ValueNode, ValueNode)   fd + threshold
    ValueNode       := Transformation | Property
    Transformation  := ft(ValueNode+)             ft in the catalogue
    Property        := one property of an entity
"""


def _figure3() -> str:
    """Algorithm 2 on the paper's two-city example."""
    source_a = DataSource(
        "a", [Entity("a:berlin", {"label": "Berlin", "point": "52.52,13.40"})]
    )
    source_b = DataSource(
        "b", [Entity("b:berlin", {"label": "berlin", "coord": "52.52,13.41"})]
    )
    pairs = find_compatible_properties(
        source_a, source_b, [("a:berlin", "b:berlin")], min_support=0.0
    )
    lines = ["Figure 3: finding compatible properties", ""]
    lines.append("positive link: (a:berlin, b:berlin)")
    for pair in pairs:
        lines.append(
            f"  ({pair.source_property}, {pair.target_property}, {pair.measure})"
        )
    return "\n".join(lines)


def _label_comparison(metric: str = "levenshtein") -> ComparisonNode:
    return ComparisonNode(
        metric=metric,
        threshold=1.0,
        source=PropertyNode("label"),
        target=PropertyNode("label"),
    )


def _date_comparison() -> ComparisonNode:
    return ComparisonNode(
        metric="date",
        threshold=364.0,
        source=PropertyNode("date"),
        target=PropertyNode("date"),
    )


def _geo_comparison() -> ComparisonNode:
    return ComparisonNode(
        metric="geographic",
        threshold=50.0,
        source=PropertyNode("point"),
        target=PropertyNode("coord"),
    )


def _generator(rng: random.Random) -> RandomRuleGenerator:
    return RandomRuleGenerator(
        [],
        rng,
        representation=FULL,
        source_properties=["label", "date", "point"],
        target_properties=["label", "date", "coord"],
    )


def _crossover_figure(title: str, operator, rule1, rule2, seed: int) -> str:
    rng = random.Random(seed)
    child = operator.apply(rule1, rule2, rng, _generator(rng), FULL)
    parts = [
        title,
        "",
        render_rule(rule1, title="parent 1"),
        "",
        render_rule(rule2, title="parent 2"),
        "",
        render_rule(child, title="offspring"),
    ]
    return "\n".join(parts)


def _figure4() -> str:
    """Operators crossover combines the comparisons of two aggregations."""
    rule1 = LinkageRule(
        AggregationNode(
            function="min", operators=(_label_comparison(), _date_comparison())
        )
    )
    rule2 = LinkageRule(
        AggregationNode(
            function="min", operators=(_label_comparison("jaccard"),
                                       _geo_comparison())
        )
    )
    return _crossover_figure(
        "Figure 4: operators crossover", OperatorsCrossover(), rule1, rule2, seed=5
    )


def _figure5() -> str:
    """Aggregation crossover builds hierarchies across tree levels."""
    rule1 = LinkageRule(
        AggregationNode(
            function="min", operators=(_label_comparison(), _date_comparison())
        )
    )
    rule2 = LinkageRule(
        AggregationNode(
            function="max",
            operators=(
                AggregationNode(
                    function="min",
                    operators=(_geo_comparison(), _label_comparison("jaccard")),
                ),
                _date_comparison(),
            ),
        )
    )
    return _crossover_figure(
        "Figure 5: aggregation crossover", AggregationCrossover(), rule1, rule2,
        seed=3,
    )


def _figure6() -> str:
    """Transformation crossover recombines transformation chains."""
    rule1 = LinkageRule(
        ComparisonNode(
            metric="levenshtein",
            threshold=1.0,
            source=TransformationNode(
                "tokenize", (TransformationNode("lowerCase", (PropertyNode("label"),)),)
            ),
            target=PropertyNode("label"),
        )
    )
    rule2 = LinkageRule(
        ComparisonNode(
            metric="jaccard",
            threshold=0.4,
            source=TransformationNode(
                "tokenize",
                (
                    TransformationNode(
                        "stem",
                        (TransformationNode("lowerCase", (PropertyNode("label"),)),),
                    ),
                ),
            ),
            target=PropertyNode("label"),
        )
    )
    return _crossover_figure(
        "Figure 6: transformation crossover", TransformationCrossover(),
        rule1, rule2, seed=11,
    )


def test_figure_operators(benchmark, results_dir):
    sections = benchmark.pedantic(
        lambda: [GRAMMAR, _figure3(), _figure4(), _figure5(), _figure6()],
        rounds=1,
        iterations=1,
    )
    text = ("\n" + "=" * 66 + "\n").join(sections)
    emit(results_dir, "fig_operators", text)
    if not strict_assertions():
        return

    grammar, figure3, figure4, figure5, figure6 = sections
    # Figure 3 must discover both property pairs of the paper's example.
    assert "(label, label, levenshtein)" in figure3
    assert "(point, coord, geographic)" in figure3
    # Each crossover figure shows two parents and an offspring.
    for figure in (figure4, figure5, figure6):
        assert "parent 1" in figure and "offspring" in figure
