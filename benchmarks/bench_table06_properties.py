"""Table 6: property counts and coverage of all six datasets."""

from repro.datasets import dataset_spec
from repro.experiments.drivers import dataset_statistics
from repro.experiments.tables import format_table

from benchmarks._util import emit


def test_table06_property_statistics(benchmark, results_dir):
    rows = benchmark.pedantic(dataset_statistics, rounds=1, iterations=1)
    text = format_table(
        ["Dataset", "|A.P|", "|B.P|", "CA", "CB", "paper CA", "paper CB"],
        [
            [
                r["name"],
                r["properties_a"],
                r["properties_b"],
                r["coverage_a"],
                r["coverage_b"],
                dataset_spec(r["name"]).coverage_a,
                dataset_spec(r["name"]).coverage_b,
            ]
            for r in rows
        ],
        title="Table 6: properties and coverage per data set",
    )
    emit(results_dir, "table06_properties", text)
    for row in rows:
        spec = dataset_spec(row["name"])
        assert abs(row["coverage_a"] - spec.coverage_a) < 0.1
