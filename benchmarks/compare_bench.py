"""Micro-benchmark regression gate for CI.

Compares two pytest-benchmark JSON files (the previous main-branch
``BENCH_<sha>.json`` artifact versus the current run) on per-benchmark
*medians*, prints a delta table, and exits non-zero when any benchmark
slowed down by more than the threshold (default 1.5x). Benchmarks that
only exist on one side (added or removed tests) are reported but never
fail the gate — renames must not block unrelated pushes.

Standalone on purpose: no repro imports, no third-party dependencies,
so the CI step can run it before anything else is importable.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--threshold 1.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_medians(path: str) -> dict[str, float]:
    """``{benchmark name: median seconds}`` of one pytest-benchmark
    JSON file (empty when the file has no benchmarks)."""
    data = json.loads(Path(path).read_text())
    return {
        bench["name"]: float(bench["stats"]["median"])
        for bench in data.get("benchmarks", [])
    }


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> tuple[list[list[str]], list[str]]:
    """Delta rows (every benchmark on either side) plus the names that
    exceed the slowdown threshold."""
    rows: list[list[str]] = []
    regressions: list[str] = []
    for name in sorted(set(baseline) | set(current)):
        old = baseline.get(name)
        new = current.get(name)
        if old is None:
            rows.append([name, "-", _format_seconds(new), "-", "new"])
            continue
        if new is None:
            rows.append([name, _format_seconds(old), "-", "-", "removed"])
            continue
        ratio = new / old if old > 0 else float("inf")
        flag = f"REGRESSION (>{threshold:.2f}x)" if ratio > threshold else ""
        if flag:
            regressions.append(name)
        rows.append(
            [
                name,
                _format_seconds(old),
                _format_seconds(new),
                f"{ratio:.2f}x",
                flag,
            ]
        )
    return rows, regressions


def format_table(rows: list[list[str]]) -> str:
    header = ["Benchmark", "Baseline median", "Current median", "Ratio", ""]
    table = [header] + rows
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths).rstrip())
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="previous BENCH_<sha>.json")
    parser.add_argument("current", help="current BENCH_<sha>.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="fail when current/baseline median exceeds this (default 1.5)",
    )
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    current = load_medians(args.current)
    rows, regressions = compare(baseline, current, args.threshold)
    if not rows:
        print("No benchmarks found in either file.")
        return 0
    print(format_table(rows))
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold:.2f}x: {', '.join(regressions)}"
        )
        return 1
    print(f"\nNo benchmark regressed beyond {args.threshold:.2f}x.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
