"""Table 8: GenLink learning curve on Restaurant, with the Carvalho et
al. reference (their paper: train 1.000, validation 0.980)."""

from repro.experiments.drivers import carvalho_reference, learning_curve

from benchmarks._util import strict_assertions, baseline_row, emit, learning_curve_table


def test_table08_restaurant(benchmark, results_dir):
    def run():
        curve = learning_curve("restaurant", seed=8)
        baseline = carvalho_reference("restaurant", seed=8)
        return curve, baseline

    curve, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    text = learning_curve_table(
        "Table 8: Restaurant",
        curve,
        references={
            "Carvalho et al. (reimplementation)": baseline_row(baseline),
            "Carvalho et al. (paper)": "train 1.000 (0.000), validation 0.980 (0.010)",
            "GenLink (paper, iter 50)": "train 0.996 (0.004), validation 0.993 (0.006)",
        },
    )
    emit(results_dir, "table08_restaurant", text)
    if not strict_assertions():
        return
    # Shape: the easy dataset converges essentially immediately.
    assert curve.final_row().validation_f_measure.mean > 0.95
